#include "core/parallel.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <numeric>
#include <stdexcept>

#include "core/campaigns.h"
#include "core/guessing_entropy.h"

namespace psc::core {
namespace {

TEST(ShardPartition, SizesSumToTotalAndDifferByAtMostOne) {
  for (const std::size_t total : {0u, 1u, 7u, 100u, 1001u}) {
    for (const std::size_t shards : {1u, 2u, 3u, 8u, 13u}) {
      std::size_t sum = 0;
      std::size_t lo = total;
      std::size_t hi = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        const std::size_t size = shard_size(total, shards, s);
        EXPECT_EQ(shard_begin(total, shards, s), sum);
        sum += size;
        lo = std::min(lo, size);
        hi = std::max(hi, size);
      }
      EXPECT_EQ(sum, total) << total << "/" << shards;
      EXPECT_LE(hi - lo, 1u) << total << "/" << shards;
      EXPECT_EQ(shard_begin(total, shards, shards), total);
    }
  }
}

TEST(ShardPartition, CheckpointPartitionsAreMonotone) {
  // A shard's target for checkpoint c never decreases with c — the
  // invariant the segment scheduler needs to advance shard engines.
  constexpr std::size_t shards = 5;
  for (std::size_t s = 0; s < shards; ++s) {
    std::size_t prev = 0;
    for (std::size_t c = 0; c <= 100; ++c) {
      const std::size_t target = shard_size(c, shards, s);
      EXPECT_GE(target, prev);
      prev = target;
    }
  }
}

// Satellite: boundary behaviour — fewer items than shards, and the
// degenerate shards == 0 plan.
TEST(ShardPartition, TotalSmallerThanShardCount) {
  constexpr std::size_t total = 3;
  constexpr std::size_t shards = 8;
  std::size_t sum = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t size = shard_size(total, shards, s);
    EXPECT_EQ(size, s < total ? 1u : 0u) << "shard " << s;
    EXPECT_EQ(shard_begin(total, shards, s), sum) << "shard " << s;
    sum += size;
  }
  EXPECT_EQ(sum, total);
  EXPECT_EQ(shard_begin(total, shards, shards), total);
}

TEST(ShardPartition, ZeroShardsIsEmpty) {
  EXPECT_EQ(shard_size(100, 0, 0), 0u);
  EXPECT_EQ(shard_size(100, 0, 5), 0u);
  EXPECT_EQ(shard_begin(100, 0, 0), 0u);
  EXPECT_EQ(shard_begin(100, 0, 5), 0u);
}

// shard_begin clamps every out-of-range index the same way: s == shards
// and s > shards both land on total, matching shard_size returning 0
// there.
TEST(ShardPartition, BeginClampsPastTheEnd) {
  for (const std::size_t total : {0u, 3u, 100u, 1001u}) {
    for (const std::size_t shards : {1u, 3u, 8u}) {
      EXPECT_EQ(shard_begin(total, shards, shards), total);
      EXPECT_EQ(shard_begin(total, shards, shards + 1), total);
      EXPECT_EQ(shard_begin(total, shards, shards + 1000), total);
      EXPECT_EQ(shard_size(total, shards, shards), 0u);
      EXPECT_EQ(shard_size(total, shards, shards + 1000), 0u);
    }
  }
}

TEST(ShardPlan, Resolution) {
  EXPECT_EQ(ShardPlan{}.resolved_workers(), 1u);
  EXPECT_EQ(ShardPlan{}.resolved_shards(), 1u);
  EXPECT_EQ((ShardPlan{.workers = 4}).resolved_shards(), 4u);
  EXPECT_EQ((ShardPlan{.workers = 4, .shards = 9}).resolved_shards(), 9u);
  EXPECT_EQ((ShardPlan{.workers = 0, .shards = 0}).resolved_shards(), 1u);
}

TEST(ShardPlan, AutoShardsSizeToWorkload) {
  // An explicit shard count always wins — shards determine the result.
  EXPECT_EQ((ShardPlan{.workers = 4, .shards = 9}).resolved_shards_for(10),
            9u);
  // Large workloads: one shard per worker.
  EXPECT_EQ((ShardPlan{.workers = 4}).resolved_shards_for(
                4 * min_traces_per_shard),
            4u);
  EXPECT_EQ((ShardPlan{.workers = 4}).resolved_shards_for(1'000'000), 4u);
  // Small workloads: capped so every shard job still amortizes its
  // lease/merge overhead; never below one shard.
  EXPECT_EQ((ShardPlan{.workers = 4}).resolved_shards_for(
                2 * min_traces_per_shard),
            2u);
  EXPECT_EQ((ShardPlan{.workers = 4}).resolved_shards_for(100), 1u);
  EXPECT_EQ((ShardPlan{.workers = 4}).resolved_shards_for(0), 1u);
  EXPECT_EQ((ShardPlan{.workers = 1}).resolved_shards_for(1'000'000), 1u);
}

TEST(ParallelRunner, MapReturnsResultsInShardOrder) {
  ParallelRunner runner({.workers = 4, .shards = 13});
  const auto out = runner.map([](std::size_t s) { return 3 * s + 1; });
  ASSERT_EQ(out.size(), 13u);
  for (std::size_t s = 0; s < out.size(); ++s) {
    EXPECT_EQ(out[s], 3 * s + 1);
  }
}

TEST(ParallelRunner, SequentialAndParallelMapAgree) {
  ParallelRunner sequential({.workers = 1, .shards = 8});
  ParallelRunner parallel({.workers = 8, .shards = 8});
  auto job = [](std::size_t s) {
    // Deterministic per-shard computation with its own split stream.
    util::Xoshiro256 rng = util::Xoshiro256(77).split(s);
    double acc = 0.0;
    for (int i = 0; i < 1000; ++i) {
      acc += rng.uniform01();
    }
    return acc;
  };
  const auto a = sequential.map(job);
  const auto b = parallel.map(job);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t s = 0; s < a.size(); ++s) {
    EXPECT_DOUBLE_EQ(a[s], b[s]);
  }
}

TEST(ParallelRunner, PropagatesLowestShardException) {
  ParallelRunner runner({.workers = 4, .shards = 8});
  try {
    runner.for_each([](std::size_t s) {
      if (s == 3 || s == 6) {
        throw std::runtime_error("shard " + std::to_string(s));
      }
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "shard 3");
  }
}

// ---------- persistent worker pool ----------

// The pool persists across runner invocations: helper threads spawned by
// the first multi-worker map are reused, not respawned, by later maps.
TEST(WorkerPool, ThreadsPersistAcrossRunners) {
  ParallelRunner first({.workers = 4, .shards = 8});
  first.for_each([](std::size_t) {});
  const std::size_t after_first = WorkerPool::instance().thread_count();
  EXPECT_GE(after_first, 3u);  // workers - 1 helpers; grow-only
  for (int round = 0; round < 5; ++round) {
    ParallelRunner again({.workers = 4, .shards = 8});
    const auto out = again.map([](std::size_t s) { return s * s; });
    for (std::size_t s = 0; s < out.size(); ++s) {
      EXPECT_EQ(out[s], s * s);
    }
    EXPECT_EQ(WorkerPool::instance().thread_count(), after_first);
  }
}

// Every job index runs exactly once per generation, across many
// back-to-back generations (the reuse path a campaign sweep exercises).
TEST(WorkerPool, EachJobRunsExactlyOncePerGeneration) {
  for (int round = 0; round < 20; ++round) {
    constexpr std::size_t jobs = 16;
    std::array<std::atomic<int>, jobs> hits{};
    WorkerPool::instance().run(jobs, 4, [&](std::size_t s) {
      hits[s].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t s = 0; s < jobs; ++s) {
      ASSERT_EQ(hits[s].load(), 1) << "round " << round << " job " << s;
    }
  }
}

// A run() from inside a pool job must not corrupt the outer generation —
// it executes inline on the calling worker.
TEST(WorkerPool, NestedRunExecutesInline) {
  std::array<std::atomic<int>, 4> outer_hits{};
  std::atomic<int> inner_total{0};
  WorkerPool::instance().run(4, 4, [&](std::size_t s) {
    outer_hits[s].fetch_add(1, std::memory_order_relaxed);
    WorkerPool::instance().run(3, 4, [&](std::size_t) {
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(outer_hits[s].load(), 1);
  }
  EXPECT_EQ(inner_total.load(), 12);
}

// reserve() pre-spawns pool threads so N posted jobs can run truly
// concurrently (post() alone only guarantees one thread) — the bus
// daemon's startup contract.
TEST(WorkerPool, ReserveGrowsThePoolUpFront) {
  WorkerPool::instance().reserve(3);
  EXPECT_GE(WorkerPool::instance().thread_count(), 3u);
  const std::size_t after = WorkerPool::instance().thread_count();
  // Never shrinks, and re-reserving a smaller count is a no-op.
  WorkerPool::instance().reserve(1);
  EXPECT_EQ(WorkerPool::instance().thread_count(), after);

  // Reserved threads actually serve posted jobs.
  std::atomic<int> hits{0};
  std::vector<WorkerPool::AsyncTicket> tickets;
  for (int i = 0; i < 8; ++i) {
    tickets.push_back(WorkerPool::instance().post(
        [&] { hits.fetch_add(1, std::memory_order_relaxed); }));
  }
  for (auto& ticket : tickets) {
    WorkerPool::instance().finish(ticket);
  }
  EXPECT_EQ(hits.load(), 8);
}

// The campaign progress hook reports every consumed trace exactly once,
// cumulatively across shards, and observing progress does not change the
// campaign's result.
TEST(CampaignProgress, CountsEveryTraceAndLeavesResultsUntouched) {
  CpaCampaignConfig config{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::user_space(),
      .trace_count = 4000,
      .models = {power::PowerModel::rd0_hw},
      .keys = {smc::FourCc("PHPC")},
      .checkpoints = {},
      .seed = 17,
      .workers = 2,
      .shards = 2,
  };
  const auto plain = run_cpa_campaign(config);

  std::atomic<std::size_t> high_water{0};
  std::atomic<std::size_t> calls{0};
  std::atomic<std::size_t> reported_total{0};
  config.progress = [&](std::size_t consumed, std::size_t total) {
    // Cross-shard calls may arrive out of order: track the max.
    std::size_t seen = high_water.load(std::memory_order_relaxed);
    while (consumed > seen &&
           !high_water.compare_exchange_weak(seen, consumed,
                                             std::memory_order_relaxed)) {
    }
    calls.fetch_add(1, std::memory_order_relaxed);
    reported_total.store(total, std::memory_order_relaxed);
  };
  const auto observed = run_cpa_campaign(config);

  EXPECT_EQ(high_water.load(), config.trace_count);
  EXPECT_EQ(reported_total.load(), config.trace_count);
  EXPECT_GE(calls.load(), 2u);  // at least one call per shard
  ASSERT_EQ(observed.keys.size(), plain.keys.size());
  EXPECT_EQ(observed.keys[0].final_results[0].true_ranks,
            plain.keys[0].final_results[0].true_ranks);
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t g = 0; g < 256; ++g) {
      ASSERT_EQ(observed.keys[0].final_results[0].bytes[i].correlation[g],
                plain.keys[0].final_results[0].bytes[i].correlation[g]);
    }
  }
}

// ---------- async side jobs (post/finish) ----------

TEST(WorkerPoolAsync, PostedJobRunsExactlyOnce) {
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> hits{0};
    auto ticket = WorkerPool::instance().post(
        [&] { hits.fetch_add(1, std::memory_order_relaxed); });
    WorkerPool::instance().finish(ticket);
    EXPECT_EQ(hits.load(), 1) << "round " << round;
    EXPECT_FALSE(static_cast<bool>(ticket));  // redeemed tickets empty
    // finish() on an empty ticket is a harmless no-op.
    EXPECT_FALSE(WorkerPool::instance().finish(ticket));
  }
}

TEST(WorkerPoolAsync, ManyOutstandingJobsAllComplete) {
  constexpr std::size_t jobs = 64;
  std::array<std::atomic<int>, jobs> hits{};
  std::vector<WorkerPool::AsyncTicket> tickets;
  tickets.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    tickets.push_back(WorkerPool::instance().post(
        [&hits, i] { hits[i].fetch_add(1, std::memory_order_relaxed); }));
  }
  for (auto& ticket : tickets) {
    WorkerPool::instance().finish(ticket);
  }
  for (std::size_t i = 0; i < jobs; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "job " << i;
  }
}

// finish() from inside a pool job steals unclaimed work back and runs it
// inline — the property that makes prefetch-inside-sharded-replay
// deadlock-free even when every pool thread is busy with shard jobs.
TEST(WorkerPoolAsync, FinishInsidePoolJobNeverDeadlocks) {
  constexpr std::size_t shards = 8;
  std::array<std::atomic<int>, shards> hits{};
  WorkerPool::instance().run(shards, 4, [&](std::size_t s) {
    auto ticket = WorkerPool::instance().post(
        [&hits, s] { hits[s].fetch_add(1, std::memory_order_relaxed); });
    WorkerPool::instance().finish(ticket);
  });
  for (std::size_t s = 0; s < shards; ++s) {
    ASSERT_EQ(hits[s].load(), 1) << "shard " << s;
  }
}

// Async jobs posted while a generation is in flight complete, and the
// generation still runs every job exactly once.
TEST(WorkerPoolAsync, InterleavesWithRunGenerations) {
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> async_hits{0};
    auto ticket = WorkerPool::instance().post(
        [&] { async_hits.fetch_add(1, std::memory_order_relaxed); });
    constexpr std::size_t jobs = 8;
    std::array<std::atomic<int>, jobs> hits{};
    WorkerPool::instance().run(jobs, 4, [&](std::size_t s) {
      hits[s].fetch_add(1, std::memory_order_relaxed);
    });
    WorkerPool::instance().finish(ticket);
    EXPECT_EQ(async_hits.load(), 1) << "round " << round;
    for (std::size_t s = 0; s < jobs; ++s) {
      ASSERT_EQ(hits[s].load(), 1) << "round " << round << " job " << s;
    }
  }
}

// ---------- campaign-level invariance ----------

// The headline guarantee of the sharded pipeline: for a fixed shard count,
// the worker count is pure execution detail — recovered key bytes,
// true-rank vectors, correlations and GE curves are bit-identical.
TEST(ParallelCpaCampaign, WorkerCountDoesNotChangeResults) {
  CpaCampaignConfig config{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::user_space(),
      .trace_count = 24000,
      .models = {power::PowerModel::rd0_hw},
      .keys = {smc::FourCc("PHPC")},
      .checkpoints = {8000},
      .seed = 91,
      .workers = 1,
      .shards = 4,
  };
  const auto serial = run_cpa_campaign(config);
  config.workers = 4;
  const auto parallel = run_cpa_campaign(config);

  EXPECT_EQ(serial.victim_key, parallel.victim_key);
  ASSERT_EQ(serial.keys.size(), parallel.keys.size());
  const auto& a = serial.keys[0];
  const auto& b = parallel.keys[0];
  ASSERT_EQ(a.curves[0].size(), b.curves[0].size());
  for (std::size_t p = 0; p < a.curves[0].size(); ++p) {
    EXPECT_EQ(a.curves[0][p].traces, b.curves[0][p].traces);
    EXPECT_DOUBLE_EQ(a.curves[0][p].ge_bits, b.curves[0][p].ge_bits);
    EXPECT_DOUBLE_EQ(a.curves[0][p].mean_rank, b.curves[0][p].mean_rank);
    EXPECT_EQ(a.curves[0][p].recovered_bytes, b.curves[0][p].recovered_bytes);
  }
  EXPECT_EQ(a.final_results[0].true_ranks, b.final_results[0].true_ranks);
  EXPECT_EQ(a.final_results[0].best_round_key,
            b.final_results[0].best_round_key);
  for (std::size_t i = 0; i < 16; ++i) {
    for (int g = 0; g < 256; ++g) {
      ASSERT_DOUBLE_EQ(
          a.final_results[0].bytes[i].correlation[static_cast<std::size_t>(g)],
          b.final_results[0].bytes[i].correlation[static_cast<std::size_t>(g)])
          << "byte " << i << " guess " << g;
    }
  }
}

TEST(ParallelTvlaCampaign, WorkerCountDoesNotChangeResults) {
  TvlaCampaignConfig config{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::user_space(),
      .traces_per_set = 1500,
      .include_pcpu = true,
      .seed = 92,
      .workers = 1,
      .shards = 3,
  };
  const auto serial = run_tvla_campaign(config);
  config.workers = 3;
  const auto parallel = run_tvla_campaign(config);

  ASSERT_EQ(serial.channels.size(), parallel.channels.size());
  for (std::size_t c = 0; c < serial.channels.size(); ++c) {
    EXPECT_EQ(serial.channels[c].channel, parallel.channels[c].channel);
    for (const PlaintextClass row : all_plaintext_classes) {
      for (const PlaintextClass col : all_plaintext_classes) {
        ASSERT_DOUBLE_EQ(serial.channels[c].matrix.score(row, col),
                         parallel.channels[c].matrix.score(row, col))
            << serial.channels[c].channel;
      }
    }
  }
}

// Sharding changes the exact trace streams but must not change the
// statistical outcome: a sharded campaign still extracts the key material
// a sequential campaign does.
TEST(ParallelCpaCampaign, ShardedCampaignStillConverges) {
  CpaCampaignConfig config{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::user_space(),
      .trace_count = 40000,
      .models = {power::PowerModel::rd0_hw},
      .keys = {smc::FourCc("PHPC")},
      .checkpoints = {10000},
      .seed = 13,
      .workers = 2,
      .shards = 8,
  };
  const auto result = run_cpa_campaign(config);
  const auto& curve = result.keys[0].curves[0];
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_GT(curve[0].ge_bits, curve[1].ge_bits);
  EXPECT_LT(curve[1].ge_bits, random_guess_ge_bits() - 5.0);
}

TEST(ParallelTvlaCampaign, ShardedCampaignStillDetectsLeakage) {
  TvlaCampaignConfig config{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::user_space(),
      .traces_per_set = 2000,
      .include_pcpu = true,
      .seed = 11,
      .workers = 2,
      .shards = 4,
  };
  const auto result = run_tvla_campaign(config);
  const auto* phpc = result.find("PHPC");
  const auto* phps = result.find("PHPS");
  const auto* pcpu = result.find("PCPU");
  ASSERT_NE(phpc, nullptr);
  ASSERT_NE(phps, nullptr);
  ASSERT_NE(pcpu, nullptr);
  EXPECT_GE(std::abs(phpc->matrix.score(PlaintextClass::all_zeros,
                                        PlaintextClass::all_ones)),
            util::tvla_threshold);
  EXPECT_TRUE(phps->matrix.no_data_dependence());
  EXPECT_TRUE(pcpu->matrix.no_data_dependence());
}

// Default plan (workers = 1, shards = 0) must resolve to the sequential
// single-shard pipeline, i.e. exactly the pre-sharding campaign behaviour
// covered by campaigns_test.
TEST(ParallelCpaCampaign, DefaultPlanIsSingleShard) {
  CpaCampaignConfig explicit_config{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::user_space(),
      .trace_count = 6000,
      .models = {power::PowerModel::rd0_hw},
      .keys = {smc::FourCc("PHPC")},
      .checkpoints = {},
      .seed = 93,
      .workers = 1,
      .shards = 1,
  };
  CpaCampaignConfig default_config = explicit_config;
  default_config.shards = 0;
  const auto a = run_cpa_campaign(explicit_config);
  const auto b = run_cpa_campaign(default_config);
  EXPECT_EQ(a.keys[0].final_results[0].true_ranks,
            b.keys[0].final_results[0].true_ranks);
  for (std::size_t i = 0; i < 16; ++i) {
    for (int g = 0; g < 256; ++g) {
      ASSERT_DOUBLE_EQ(
          a.keys[0].final_results[0].bytes[i]
              .correlation[static_cast<std::size_t>(g)],
          b.keys[0].final_results[0].bytes[i]
              .correlation[static_cast<std::size_t>(g)]);
    }
  }
}

}  // namespace
}  // namespace psc::core
