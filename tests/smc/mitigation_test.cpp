#include "smc/mitigation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "smc/controller.h"
#include "soc/chip.h"

namespace psc::smc {
namespace {

TEST(MitigationPolicy, NoneIsNoop) {
  EXPECT_TRUE(MitigationPolicy::none().is_noop());
  EXPECT_FALSE(MitigationPolicy::rapl_style_filtering().is_noop());
  EXPECT_FALSE(MitigationPolicy::access_control().is_noop());
}

TEST(MitigationPolicy, PowerTelemetryClassification) {
  const KeyDatabase db = KeyDatabase::for_device("MacBook Air M2");
  EXPECT_TRUE(is_power_telemetry(*db.find(FourCc("PHPC"))));
  EXPECT_TRUE(is_power_telemetry(*db.find(FourCc("PMVC"))));
  EXPECT_TRUE(is_power_telemetry(*db.find(FourCc("PHPS"))));
  EXPECT_FALSE(is_power_telemetry(*db.find(FourCc("TC0P"))));
  EXPECT_FALSE(is_power_telemetry(*db.find(FourCc("PCTR"))));  // setpoint
  EXPECT_FALSE(is_power_telemetry(*db.find(FourCc("PLPM"))));
}

TEST(ApplyMitigations, NoopReturnsIdenticalSpecs) {
  const KeyDatabase db = KeyDatabase::for_device("MacBook Air M2");
  const KeyDatabase out = apply_mitigations(db, MitigationPolicy::none());
  ASSERT_EQ(out.size(), db.size());
  for (std::size_t i = 0; i < db.size(); ++i) {
    EXPECT_DOUBLE_EQ(out.entries()[i].spec.noise_sigma,
                     db.entries()[i].spec.noise_sigma);
  }
}

TEST(ApplyMitigations, NoiseBlendedInQuadrature) {
  const KeyDatabase db = KeyDatabase::for_device("MacBook Air M2");
  MitigationPolicy policy;
  policy.added_noise_sigma = 300e-6;
  const KeyDatabase out = apply_mitigations(db, policy);
  const double before = db.find(FourCc("PHPC"))->spec.noise_sigma;
  const double after = out.find(FourCc("PHPC"))->spec.noise_sigma;
  EXPECT_DOUBLE_EQ(after, std::hypot(before, 300e-6));
}

TEST(ApplyMitigations, OnlyPowerKeysTouched) {
  const KeyDatabase db = KeyDatabase::for_device("MacBook Air M2");
  const KeyDatabase out =
      apply_mitigations(db, MitigationPolicy::rapl_style_filtering());
  EXPECT_DOUBLE_EQ(out.find(FourCc("TC0P"))->spec.noise_sigma,
                   db.find(FourCc("TC0P"))->spec.noise_sigma);
  EXPECT_DOUBLE_EQ(out.find(FourCc("PCTR"))->spec.update_period_s,
                   db.find(FourCc("PCTR"))->spec.update_period_s);
}

TEST(ApplyMitigations, RaplStyleClampsResolutionAndPeriod) {
  const KeyDatabase db = KeyDatabase::for_device("MacBook Air M2");
  const KeyDatabase out =
      apply_mitigations(db, MitigationPolicy::rapl_style_filtering());
  const auto* phpc = out.find(FourCc("PHPC"));
  EXPECT_GE(phpc->spec.quant_step, 1e-3);
  EXPECT_GE(phpc->spec.update_period_s, 10.0);
  EXPECT_FALSE(phpc->info.privileged_read);  // keys stay readable
}

TEST(ApplyMitigations, AccessControlRestrictsPowerKeys) {
  const KeyDatabase db = KeyDatabase::for_device("Mac Mini M1");
  const KeyDatabase out =
      apply_mitigations(db, MitigationPolicy::access_control());
  for (const auto& entry : out.entries()) {
    if (is_power_telemetry(entry)) {
      EXPECT_TRUE(entry.info.privileged_read) << entry.info.key.str();
    }
  }
  // Non-power keys keep their accessibility.
  EXPECT_FALSE(out.find(FourCc("TC0P"))->info.privileged_read);
}

TEST(Mitigations, ControllerEnforcesAccessControl) {
  soc::Chip chip(soc::DeviceProfile::macbook_air_m2(), 61);
  SmcController controller(chip, 62, MitigationPolicy::access_control());
  SmcValue value;
  EXPECT_EQ(controller.read(FourCc("PHPC"), Privilege::user, value),
            SmcStatus::privilege_required);
  // Legitimate telemetry consumers (root) keep access.
  EXPECT_EQ(controller.read(FourCc("PHPC"), Privilege::root, value),
            SmcStatus::ok);
  // Unrelated keys stay readable for everyone.
  EXPECT_EQ(controller.read(FourCc("TC0P"), Privilege::user, value),
            SmcStatus::ok);
}

TEST(Mitigations, FilteringKeepsUserAccess) {
  soc::Chip chip(soc::DeviceProfile::macbook_air_m2(), 63);
  SmcController controller(chip, 64,
                           MitigationPolicy::rapl_style_filtering());
  SmcValue value;
  EXPECT_EQ(controller.read(FourCc("PHPC"), Privilege::user, value),
            SmcStatus::ok);
}

}  // namespace
}  // namespace psc::smc
