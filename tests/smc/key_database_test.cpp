#include "smc/key_database.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace psc::smc {
namespace {

TEST(KeyDatabase, UnknownDeviceThrows) {
  EXPECT_THROW(KeyDatabase::for_device("iPhone 15"), std::invalid_argument);
}

TEST(KeyDatabase, M2WorkloadDependentSetMatchesTable2) {
  const KeyDatabase db = KeyDatabase::for_device("MacBook Air M2");
  std::vector<FourCc> expected = {FourCc("PDTR"), FourCc("PHPC"),
                                  FourCc("PHPS"), FourCc("PMVC"),
                                  FourCc("PSTR")};
  std::vector<FourCc> actual = db.workload_dependent_keys();
  std::sort(expected.begin(), expected.end());
  std::sort(actual.begin(), actual.end());
  EXPECT_EQ(actual, expected);
}

TEST(KeyDatabase, M1WorkloadDependentSetMatchesTable2) {
  const KeyDatabase db = KeyDatabase::for_device("Mac Mini M1");
  std::vector<FourCc> expected = {FourCc("PDTR"), FourCc("PHPC"),
                                  FourCc("PHPS"), FourCc("PMVR"),
                                  FourCc("PPMR"), FourCc("PSTR")};
  std::vector<FourCc> actual = db.workload_dependent_keys();
  std::sort(expected.begin(), expected.end());
  std::sort(actual.begin(), actual.end());
  EXPECT_EQ(actual, expected);
}

TEST(KeyDatabase, M2HasNoM1OnlyKeys) {
  const KeyDatabase db = KeyDatabase::for_device("MacBook Air M2");
  EXPECT_EQ(db.find(FourCc("PMVR")), nullptr);
  EXPECT_EQ(db.find(FourCc("PPMR")), nullptr);
  EXPECT_NE(db.find(FourCc("PMVC")), nullptr);
}

TEST(KeyDatabase, M1HasNoM2OnlyKeys) {
  const KeyDatabase db = KeyDatabase::for_device("Mac Mini M1");
  EXPECT_EQ(db.find(FourCc("PMVC")), nullptr);
  EXPECT_NE(db.find(FourCc("PMVR")), nullptr);
}

TEST(KeyDatabase, AboutThirtyPowerKeys) {
  // The paper narrowed the pool of P-keys to "approximately 30".
  for (const char* device : {"Mac Mini M1", "MacBook Air M2"}) {
    const KeyDatabase db = KeyDatabase::for_device(device);
    const auto p_keys = db.keys_with_prefix('P');
    EXPECT_GE(p_keys.size(), 28u) << device;
    EXPECT_LE(p_keys.size(), 34u) << device;
  }
}

TEST(KeyDatabase, PhpcIsCleanPClusterMeter) {
  const KeyDatabase db = KeyDatabase::for_device("MacBook Air M2");
  const KeyEntry* phpc = db.find(FourCc("PHPC"));
  ASSERT_NE(phpc, nullptr);
  EXPECT_EQ(phpc->spec.source, SensorSource::rail_power);
  EXPECT_DOUBLE_EQ(phpc->spec.rails.p_cluster, 1.0);
  EXPECT_DOUBLE_EQ(phpc->spec.rails.dram, 0.0);
  EXPECT_DOUBLE_EQ(phpc->spec.update_period_s, 1.0);
  // uW-class resolution.
  EXPECT_LE(phpc->spec.quant_step, 1e-6);
}

TEST(KeyDatabase, PhpsIsEstimateNotSensor) {
  for (const char* device : {"Mac Mini M1", "MacBook Air M2"}) {
    const KeyDatabase db = KeyDatabase::for_device(device);
    const KeyEntry* phps = db.find(FourCc("PHPS"));
    ASSERT_NE(phps, nullptr) << device;
    EXPECT_EQ(phps->spec.source, SensorSource::estimated_power) << device;
  }
}

TEST(KeyDatabase, PstrIsNoisierThanPhpc) {
  const KeyDatabase db = KeyDatabase::for_device("MacBook Air M2");
  const KeyEntry* phpc = db.find(FourCc("PHPC"));
  const KeyEntry* pstr = db.find(FourCc("PSTR"));
  ASSERT_NE(phpc, nullptr);
  ASSERT_NE(pstr, nullptr);
  EXPECT_GT(pstr->spec.noise_sigma, 5.0 * phpc->spec.noise_sigma);
  // PSTR sees the full DRAM/IO rail; PHPC does not.
  EXPECT_DOUBLE_EQ(pstr->spec.rails.dram, 1.0);
}

TEST(KeyDatabase, AllKeysReadableExceptSecure) {
  const KeyDatabase db = KeyDatabase::for_device("MacBook Air M2");
  for (const auto& entry : db.entries()) {
    if (entry.info.key == FourCc("PSEC")) {
      EXPECT_TRUE(entry.info.privileged_read);
    } else {
      EXPECT_FALSE(entry.info.privileged_read)
          << entry.info.key.str()
          << ": power keys must be user-readable (the paper's finding)";
    }
  }
}

TEST(KeyDatabase, LowpowerFlagWritable) {
  const KeyDatabase db = KeyDatabase::for_device("MacBook Air M2");
  const KeyEntry* plpm = db.find(FourCc("PLPM"));
  ASSERT_NE(plpm, nullptr);
  EXPECT_TRUE(plpm->info.writable);
  EXPECT_EQ(plpm->info.type, SmcDataType::flag);
}

TEST(KeyDatabase, KeysAreUnique) {
  for (const char* device : {"Mac Mini M1", "MacBook Air M2"}) {
    const KeyDatabase db = KeyDatabase::for_device(device);
    std::vector<FourCc> keys;
    for (const auto& entry : db.entries()) {
      keys.push_back(entry.info.key);
    }
    std::sort(keys.begin(), keys.end());
    EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end())
        << device;
  }
}

TEST(KeyDatabase, PrefixFilterWorks) {
  const KeyDatabase db = KeyDatabase::for_device("MacBook Air M2");
  for (const FourCc key : db.keys_with_prefix('T')) {
    EXPECT_EQ(key.at(0), 'T');
  }
  EXPECT_FALSE(db.keys_with_prefix('T').empty());
}

}  // namespace
}  // namespace psc::smc
