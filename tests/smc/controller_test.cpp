#include "smc/controller.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "soc/workload.h"

namespace psc::smc {
namespace {

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest()
      : chip_(soc::DeviceProfile::macbook_air_m2(), 77),
        controller_(chip_, 78) {}

  soc::Chip chip_;
  SmcController controller_;
};

TEST_F(ControllerTest, ReadKnownKey) {
  SmcValue value;
  EXPECT_EQ(controller_.read(FourCc("PHPC"), Privilege::user, value),
            SmcStatus::ok);
  EXPECT_EQ(value.type(), SmcDataType::flt);
  EXPECT_GT(value.as_double(), 0.0);
}

TEST_F(ControllerTest, ReadUnknownKey) {
  SmcValue value;
  EXPECT_EQ(controller_.read(FourCc("ZZZZ"), Privilege::user, value),
            SmcStatus::key_not_found);
}

TEST_F(ControllerTest, PrivilegedKeyDeniedForUser) {
  SmcValue value;
  EXPECT_EQ(controller_.read(FourCc("PSEC"), Privilege::user, value),
            SmcStatus::privilege_required);
  EXPECT_EQ(controller_.read(FourCc("PSEC"), Privilege::root, value),
            SmcStatus::ok);
}

TEST_F(ControllerTest, PowerKeysAreUserReadable) {
  // The vulnerability: every workload-dependent key reads fine as user.
  for (const FourCc key : controller_.database().workload_dependent_keys()) {
    SmcValue value;
    EXPECT_EQ(controller_.read(key, Privilege::user, value), SmcStatus::ok)
        << key.str();
  }
}

TEST_F(ControllerTest, ValueLatchedWithinUpdatePeriod) {
  SmcValue first;
  controller_.read(FourCc("PHPC"), Privilege::user, first);
  chip_.run_for(0.2);  // less than the 1 s period
  SmcValue second;
  controller_.read(FourCc("PHPC"), Privilege::user, second);
  EXPECT_EQ(first.as_float(), second.as_float());
}

TEST_F(ControllerTest, ValueRefreshesAfterUpdatePeriod) {
  SmcValue first;
  controller_.read(FourCc("PHPC"), Privilege::user, first);
  chip_.run_for(1.1);
  SmcValue second;
  controller_.read(FourCc("PHPC"), Privilege::user, second);
  // Fresh noise draw makes equality vanishingly unlikely.
  EXPECT_NE(first.as_float(), second.as_float());
  EXPECT_GE(controller_.last_latch_time(FourCc("PHPC")), 1.0);
}

TEST_F(ControllerTest, PhpcTracksLoad) {
  SmcValue idle;
  chip_.run_for(1.1);
  controller_.read(FourCc("PHPC"), Privilege::user, idle);

  std::vector<std::unique_ptr<soc::MatrixStressor>> stressors;
  for (std::size_t i = 0; i < chip_.p_core_count(); ++i) {
    stressors.push_back(std::make_unique<soc::MatrixStressor>());
    chip_.p_core(i).assign(stressors.back().get());
  }
  chip_.run_for(1.5);
  SmcValue busy;
  controller_.read(FourCc("PHPC"), Privilege::user, busy);
  EXPECT_GT(busy.as_double(), 5.0 * idle.as_double());
}

TEST_F(ControllerTest, PhpsApproximatesPackagePower) {
  chip_.run_for(1.1);
  SmcValue phps;
  controller_.read(FourCc("PHPS"), Privilege::user, phps);
  EXPECT_NEAR(phps.as_double(), chip_.estimated_package_power_w(), 0.05);
}

TEST_F(ControllerTest, TemperatureKeyReflectsThermalModel) {
  chip_.run_for(1.1);
  SmcValue temp;
  controller_.read(FourCc("TC0P"), Privilege::user, temp);
  EXPECT_NEAR(temp.as_double(), chip_.temperature_c(), 1.5);
}

TEST_F(ControllerTest, WriteRequiresRoot) {
  EXPECT_EQ(controller_.write(FourCc("PLPM"), Privilege::user,
                              SmcValue::from_flag(true)),
            SmcStatus::privilege_required);
  EXPECT_FALSE(chip_.lowpowermode());
}

TEST_F(ControllerTest, RootWriteTogglesLowpowermode) {
  EXPECT_EQ(controller_.write(FourCc("PLPM"), Privilege::root,
                              SmcValue::from_flag(true)),
            SmcStatus::ok);
  EXPECT_TRUE(chip_.lowpowermode());
  EXPECT_EQ(controller_.write(FourCc("PLPM"), Privilege::root,
                              SmcValue::from_flag(false)),
            SmcStatus::ok);
  EXPECT_FALSE(chip_.lowpowermode());
}

TEST_F(ControllerTest, WriteWrongTypeRejected) {
  EXPECT_EQ(controller_.write(FourCc("PLPM"), Privilege::root,
                              SmcValue::from_float(1.0f)),
            SmcStatus::bad_argument);
}

TEST_F(ControllerTest, WriteReadOnlyKeyRejected) {
  EXPECT_EQ(controller_.write(FourCc("PHPC"), Privilege::root,
                              SmcValue::from_float(0.0f)),
            SmcStatus::not_writable);
}

TEST_F(ControllerTest, WriteUnknownKeyRejected) {
  EXPECT_EQ(controller_.write(FourCc("ZZZZ"), Privilege::root,
                              SmcValue::from_flag(true)),
            SmcStatus::key_not_found);
}

TEST_F(ControllerTest, LowpowerFlagReadsChipState) {
  chip_.set_lowpowermode(true);
  chip_.run_for(0.01);
  SmcValue flag;
  controller_.read(FourCc("PLPM"), Privilege::user, flag);
  EXPECT_TRUE(flag.as_flag());
}

TEST_F(ControllerTest, QuantizationApplied) {
  // Constant setpoint keys with zero noise must be exact.
  SmcValue v;
  controller_.read(FourCc("PCTR"), Privilege::user, v);
  EXPECT_DOUBLE_EQ(v.as_double(), 45.0);
}

}  // namespace
}  // namespace psc::smc
