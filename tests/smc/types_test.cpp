#include "smc/types.h"

#include <gtest/gtest.h>

namespace psc::smc {
namespace {

TEST(SmcValue, FloatRoundTrip) {
  const SmcValue v = SmcValue::from_float(3.14f);
  EXPECT_EQ(v.type(), SmcDataType::flt);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_FLOAT_EQ(v.as_float(), 3.14f);
}

TEST(SmcValue, U8RoundTrip) {
  const SmcValue v = SmcValue::from_u8(0xAB);
  EXPECT_EQ(v.type(), SmcDataType::ui8);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v.as_u8(), 0xAB);
}

TEST(SmcValue, U16RoundTrip) {
  const SmcValue v = SmcValue::from_u16(0xBEEF);
  EXPECT_EQ(v.as_u16(), 0xBEEF);
  EXPECT_EQ(v.size(), 2u);
}

TEST(SmcValue, U32RoundTrip) {
  const SmcValue v = SmcValue::from_u32(0xDEADBEEF);
  EXPECT_EQ(v.as_u32(), 0xDEADBEEFu);
  EXPECT_EQ(v.size(), 4u);
}

TEST(SmcValue, FlagRoundTrip) {
  EXPECT_TRUE(SmcValue::from_flag(true).as_flag());
  EXPECT_FALSE(SmcValue::from_flag(false).as_flag());
}

TEST(SmcValue, AsDoubleForAllTypes) {
  EXPECT_DOUBLE_EQ(SmcValue::from_float(2.5f).as_double(), 2.5);
  EXPECT_DOUBLE_EQ(SmcValue::from_u8(7).as_double(), 7.0);
  EXPECT_DOUBLE_EQ(SmcValue::from_u16(300).as_double(), 300.0);
  EXPECT_DOUBLE_EQ(SmcValue::from_u32(70000).as_double(), 70000.0);
  EXPECT_DOUBLE_EQ(SmcValue::from_flag(true).as_double(), 1.0);
}

TEST(SmcValue, FromRawDecodesWireBytes) {
  const SmcValue original = SmcValue::from_float(-17.25f);
  const SmcValue decoded =
      SmcValue::from_raw(SmcDataType::flt, original.bytes().data());
  EXPECT_FLOAT_EQ(decoded.as_float(), -17.25f);
}

TEST(SmcDataTypes, TypeCodes) {
  EXPECT_EQ(data_type_code(SmcDataType::flt).str(), "flt ");
  EXPECT_EQ(data_type_code(SmcDataType::ui8).str(), "ui8 ");
  EXPECT_EQ(data_type_code(SmcDataType::ui16).str(), "ui16");
  EXPECT_EQ(data_type_code(SmcDataType::ui32).str(), "ui32");
  EXPECT_EQ(data_type_code(SmcDataType::flag).str(), "flag");
}

TEST(SmcDataTypes, Sizes) {
  EXPECT_EQ(data_type_size(SmcDataType::flt), 4);
  EXPECT_EQ(data_type_size(SmcDataType::ui8), 1);
  EXPECT_EQ(data_type_size(SmcDataType::ui16), 2);
  EXPECT_EQ(data_type_size(SmcDataType::ui32), 4);
  EXPECT_EQ(data_type_size(SmcDataType::flag), 1);
}

TEST(SmcStatusNames, AllNamed) {
  EXPECT_EQ(status_name(SmcStatus::ok), "ok");
  EXPECT_EQ(status_name(SmcStatus::key_not_found), "key_not_found");
  EXPECT_EQ(status_name(SmcStatus::privilege_required), "privilege_required");
  EXPECT_EQ(status_name(SmcStatus::bad_index), "bad_index");
}

}  // namespace
}  // namespace psc::smc
