#include "smc/fuzzer.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "soc/workload.h"

namespace psc::smc {
namespace {

class FuzzerTest : public ::testing::Test {
 protected:
  FuzzerTest()
      : chip_(soc::DeviceProfile::macbook_air_m2(), 55),
        controller_(chip_, 56),
        conn_(controller_, Privilege::user) {}

  soc::Chip chip_;
  SmcController controller_;
  SmcConnection conn_;
};

TEST_F(FuzzerTest, SnapshotFiltersByPrefix) {
  chip_.run_for(1.1);
  const auto snap = snapshot_keys(conn_, 'P');
  EXPECT_GE(snap.size(), 25u);
  for (const auto& s : snap) {
    EXPECT_EQ(s.key.at(0), 'P');
  }
}

TEST_F(FuzzerTest, SnapshotSkipsPrivilegedKeys) {
  chip_.run_for(1.1);
  const auto snap = snapshot_keys(conn_, 'P');
  for (const auto& s : snap) {
    EXPECT_NE(s.key, FourCc("PSEC"));
  }
}

TEST_F(FuzzerTest, DiffSortedByRelativeDelta) {
  const std::vector<KeySnapshot> idle = {{FourCc("AAAA"), 1.0},
                                         {FourCc("BBBB"), 2.0},
                                         {FourCc("CCCC"), 10.0}};
  const std::vector<KeySnapshot> busy = {{FourCc("AAAA"), 1.1},
                                         {FourCc("BBBB"), 6.0},
                                         {FourCc("CCCC"), 10.05}};
  const auto deltas = diff_snapshots(idle, busy);
  ASSERT_EQ(deltas.size(), 3u);
  EXPECT_EQ(deltas[0].key, FourCc("BBBB"));  // 200% change
  EXPECT_EQ(deltas[1].key, FourCc("AAAA"));  // 10%
  EXPECT_EQ(deltas[2].key, FourCc("CCCC"));  // 0.5%
}

TEST_F(FuzzerTest, DiffIgnoresUnpairedKeys) {
  const std::vector<KeySnapshot> idle = {{FourCc("AAAA"), 1.0}};
  const std::vector<KeySnapshot> busy = {{FourCc("BBBB"), 2.0}};
  EXPECT_TRUE(diff_snapshots(idle, busy).empty());
}

TEST_F(FuzzerTest, ThresholdFiltering) {
  const std::vector<KeyDelta> deltas = {
      {FourCc("BIGG"), 1.0, 5.0, 4.0, 4.0},
      {FourCc("TINY"), 1.0, 1.001, 0.001, 0.001},
      {FourCc("ZERO"), 1e-6, 2e-6, 1e-6, 1.0},  // big relative, tiny absolute
  };
  const auto found = workload_dependent_keys(deltas, 0.05, 5e-3);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], FourCc("BIGG"));
}

TEST_F(FuzzerTest, IdleVsStressRecoversTable2Keys) {
  // The end-to-end section 3.2 methodology: snapshot idle, stress all
  // cores with matrix workloads, snapshot again, diff — and find exactly
  // the device's data/workload-dependent keys.
  chip_.run_for(1.2);
  const auto idle_snap = snapshot_keys(conn_, 'P');

  std::vector<std::unique_ptr<soc::MatrixStressor>> stressors;
  for (std::size_t c = 0; c < chip_.core_count(); ++c) {
    stressors.push_back(std::make_unique<soc::MatrixStressor>());
    chip_.core(c).assign(stressors.back().get());
  }
  chip_.run_for(2.0);
  const auto busy_snap = snapshot_keys(conn_, 'P');

  const auto found =
      workload_dependent_keys(diff_snapshots(idle_snap, busy_snap));
  std::vector<FourCc> expected = controller_.database()
                                     .workload_dependent_keys();
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(found, expected);
}

}  // namespace
}  // namespace psc::smc
