#include "smc/client.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace psc::smc {
namespace {

class ClientTest : public ::testing::Test {
 protected:
  ClientTest()
      : chip_(soc::DeviceProfile::macbook_air_m2(), 91),
        controller_(chip_, 92),
        user_(controller_, Privilege::user),
        root_(controller_, Privilege::root) {}

  soc::Chip chip_;
  SmcController controller_;
  SmcConnection user_;
  SmcConnection root_;
};

TEST_F(ClientTest, BadSelectorRejected) {
  SmcKeyData in;
  SmcKeyData out;
  EXPECT_EQ(user_.call_struct_method(99, in, out), SmcStatus::bad_argument);
  EXPECT_EQ(out.result, static_cast<std::uint8_t>(SmcStatus::bad_argument));
}

TEST_F(ClientTest, BadCommandRejected) {
  SmcKeyData in;
  in.command = 0x42;
  SmcKeyData out;
  EXPECT_EQ(user_.call_struct_method(selector_handle_ypc_event, in, out),
            SmcStatus::bad_argument);
}

TEST_F(ClientTest, ReadKeyThroughStructMethod) {
  SmcKeyData in;
  in.key = FourCc("PHPC").code();
  in.command = static_cast<std::uint8_t>(SmcCommand::read_key);
  SmcKeyData out;
  ASSERT_EQ(user_.call_struct_method(selector_handle_ypc_event, in, out),
            SmcStatus::ok);
  EXPECT_EQ(out.key, in.key);
  EXPECT_EQ(out.key_info.data_size, 4u);
  EXPECT_EQ(out.key_info.data_type, FourCc("flt ").code());
  const SmcValue decoded = SmcValue::from_raw(SmcDataType::flt,
                                              out.bytes.data());
  EXPECT_GT(decoded.as_double(), 0.0);
}

TEST_F(ClientTest, ReadKeyConvenienceMatchesStructCall) {
  SmcValue via_wrapper;
  ASSERT_EQ(user_.read_key(FourCc("PCTR"), via_wrapper), SmcStatus::ok);
  EXPECT_DOUBLE_EQ(via_wrapper.as_double(), 45.0);
}

TEST_F(ClientTest, KeyInfoAttributes) {
  SmcKeyInfo info;
  ASSERT_EQ(user_.key_info(FourCc("PLPM"), info), SmcStatus::ok);
  EXPECT_TRUE(info.writable);
  ASSERT_EQ(user_.key_info(FourCc("PHPC"), info), SmcStatus::ok);
  EXPECT_FALSE(info.writable);
  EXPECT_TRUE(info.readable);
}

TEST_F(ClientTest, KeyInfoAttributeBitsOnWire) {
  SmcKeyData in;
  in.key = FourCc("PSEC").code();
  in.command = static_cast<std::uint8_t>(SmcCommand::key_info);
  SmcKeyData out;
  ASSERT_EQ(user_.call_struct_method(selector_handle_ypc_event, in, out),
            SmcStatus::ok);
  EXPECT_TRUE(out.key_info.attributes & 0x01);  // readable
  EXPECT_FALSE(out.key_info.attributes & 0x02); // not writable
  EXPECT_TRUE(out.key_info.attributes & 0x04);  // privileged
}

TEST_F(ClientTest, KeyByIndexEnumerates) {
  FourCc first;
  ASSERT_EQ(user_.key_at_index(0, first), SmcStatus::ok);
  EXPECT_EQ(first, controller_.database().entries()[0].info.key);
  FourCc out;
  EXPECT_EQ(user_.key_at_index(user_.key_count(), out), SmcStatus::bad_index);
}

TEST_F(ClientTest, ListKeysCoversCatalog) {
  const auto keys = user_.list_keys();
  EXPECT_EQ(keys.size(), controller_.database().size());
  EXPECT_NE(std::find(keys.begin(), keys.end(), FourCc("PHPC")), keys.end());
  EXPECT_NE(std::find(keys.begin(), keys.end(), FourCc("PSTR")), keys.end());
}

TEST_F(ClientTest, UserCannotReadPrivilegedKey) {
  SmcValue value;
  EXPECT_EQ(user_.read_key(FourCc("PSEC"), value),
            SmcStatus::privilege_required);
  EXPECT_EQ(root_.read_key(FourCc("PSEC"), value), SmcStatus::ok);
}

TEST_F(ClientTest, WriteThroughStructMethod) {
  const SmcValue flag = SmcValue::from_flag(true);
  EXPECT_EQ(user_.write_key(FourCc("PLPM"), flag),
            SmcStatus::privilege_required);
  EXPECT_EQ(root_.write_key(FourCc("PLPM"), flag), SmcStatus::ok);
  EXPECT_TRUE(chip_.lowpowermode());
}

TEST_F(ClientTest, ReadNumericNanOnMissing) {
  EXPECT_TRUE(std::isnan(user_.read_numeric(FourCc("ZZZZ"))));
  EXPECT_FALSE(std::isnan(user_.read_numeric(FourCc("PHPC"))));
}

}  // namespace
}  // namespace psc::smc
