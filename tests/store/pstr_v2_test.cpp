// PSTR v2: compressed chunk codecs end-to-end through the store layer.
// Round trips must be bit-exact in both reader modes, corruption inside
// a *compressed* column block must be a loud StoreError (the CRC covers
// the decoded payload, so codecs cannot weaken integrity), and a CPA
// campaign replayed from a v2 file — through the prefetching source —
// must match the live recording bit for bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/analysis_sink.h"
#include "core/trace_source.h"
#include "store/file_trace_source.h"
#include "store/trace_file_reader.h"
#include "store/trace_file_writer.h"
#include "util/rng.h"

namespace psc::store {
namespace {

constexpr std::size_t rows = 600;
constexpr std::size_t chunk_rows = 128;
constexpr std::size_t n_channels = 3;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

// A batch shaped like a real capture: random AES blocks and channel
// columns on quantized float32-truncated sensor grids — exactly what
// victim/fast_trace.cpp records, and what delta_bitpack compresses.
core::TraceBatch quantized_batch(std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  core::TraceBatch batch(n_channels);
  batch.resize(rows);
  for (auto& pt : batch.plaintexts()) {
    rng.fill_bytes(pt);
  }
  for (auto& ct : batch.ciphertexts()) {
    rng.fill_bytes(ct);
  }
  const double steps[n_channels] = {1e-6, 1e-3, 0.01};
  for (std::size_t c = 0; c < n_channels; ++c) {
    double level = 4.0;
    for (auto& v : batch.column(c)) {
      level += rng.gaussian(0.0, 50 * steps[c]);
      v = static_cast<double>(
          static_cast<float>(std::round(level / steps[c]) * steps[c]));
    }
  }
  return batch;
}

std::string write_v2_file(const std::string& name,
                          const core::TraceBatch& batch) {
  const std::string path = temp_path(name);
  TraceFileWriter writer(
      path,
      {.channels = {util::FourCc("PHPC"), util::FourCc("PMVC"),
                    util::FourCc("PSTR")},
       .chunk_capacity = chunk_rows,
       .channel_codecs =
           uniform_channel_codecs(n_channels, ColumnCodec::delta_bitpack)});
  EXPECT_EQ(writer.format_version(), format_version_v2);
  writer.append(batch);
  writer.finalize();
  return path;
}

void expect_batches_bit_identical(const core::TraceBatch& a,
                                  const core::TraceBatch& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.channels(), b.channels());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.plaintexts()[i], b.plaintexts()[i]) << "row " << i;
    ASSERT_EQ(a.ciphertexts()[i], b.ciphertexts()[i]) << "row " << i;
  }
  for (std::size_t c = 0; c < a.channels(); ++c) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(a.column(c)[i]),
                std::bit_cast<std::uint64_t>(b.column(c)[i]))
          << "channel " << c << " row " << i;
    }
  }
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), {}};
}

void dump(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Offset of chunk 0's header: the first "CHNK" after the file header.
std::size_t first_chunk_offset(const std::vector<char>& bytes) {
  for (std::size_t i = 0; i + 4 <= bytes.size(); ++i) {
    if (bytes[i] == 'C' && bytes[i + 1] == 'H' && bytes[i + 2] == 'N' &&
        bytes[i + 3] == 'K') {
      return i;
    }
  }
  ADD_FAILURE() << "no CHNK magic found";
  return bytes.size();
}

// Directory entry of column `col` in chunk 0 (u32 codec, u32 reserved,
// u64 raw_bytes, u64 stored_bytes).
std::byte* dir_entry(std::vector<char>& bytes, std::size_t col) {
  const std::size_t chunk = first_chunk_offset(bytes);
  return reinterpret_cast<std::byte*>(bytes.data()) + chunk +
         chunk_header_bytes + col * column_entry_bytes;
}

// File offset of the first byte of column `col`'s block in chunk 0.
std::size_t column_block_offset(std::vector<char>& bytes, std::size_t col) {
  const std::size_t chunk = first_chunk_offset(bytes);
  std::size_t off = chunk + chunk_header_bytes +
                    chunk_column_count(n_channels) * column_entry_bytes;
  for (std::size_t c = 0; c < col; ++c) {
    off += pad8(get_u64(dir_entry(bytes, c) + 16));  // stored_bytes
  }
  return off;
}

void expect_chunk0_fails(const std::string& path, const std::string& needle,
                         ReaderMode mode) {
  try {
    TraceFileReader reader(path, mode);
    core::TraceBatch batch(reader.channels().size());
    reader.read_rows(0, chunk_rows, batch);
    FAIL() << "expected StoreError containing \"" << needle << "\"";
  } catch (const StoreError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(PstrV2, RoundTripsBitExactInBothReaderModes) {
  const core::TraceBatch original = quantized_batch(3);
  const std::string path = write_v2_file("v2_roundtrip.pstr", original);

  for (const ReaderMode mode : {ReaderMode::automatic, ReaderMode::stream}) {
    TraceFileReader reader(path, mode);
    EXPECT_EQ(reader.format_version(), format_version_v2);
    ASSERT_EQ(reader.trace_count(), rows);
    core::TraceBatch loaded(n_channels);
    reader.read_rows(0, rows, loaded);
    expect_batches_bit_identical(loaded, original);
  }
}

TEST(PstrV2, CompressionEngagesAndShrinksChannelColumns) {
  const core::TraceBatch original = quantized_batch(5);
  const std::string path = temp_path("v2_shrink.pstr");
  TraceFileWriter writer(
      path,
      {.channels = {util::FourCc("PHPC"), util::FourCc("PMVC"),
                    util::FourCc("PSTR")},
       .chunk_capacity = chunk_rows,
       .channel_codecs =
           uniform_channel_codecs(n_channels, ColumnCodec::delta_bitpack)});
  writer.append(original);
  writer.finalize();
  EXPECT_EQ(writer.channel_raw_bytes(), rows * n_channels * 8);
  // Narrow quantized walks pack well below half the raw doubles.
  EXPECT_LT(writer.channel_stored_bytes() * 2, writer.channel_raw_bytes());

  // And the v2 file is genuinely smaller than the same data as v1.
  const std::string v1_path = temp_path("v2_shrink_ref_v1.pstr");
  TraceFileWriter v1_writer(
      v1_path, {.channels = writer.channels(), .chunk_capacity = chunk_rows});
  v1_writer.append(original);
  v1_writer.finalize();
  EXPECT_LT(TraceFileReader(path).file_bytes(),
            TraceFileReader(v1_path).file_bytes());
}

TEST(PstrV2, UnquantizedDataFallsBackToIdentityAndRoundTrips) {
  util::Xoshiro256 rng(7);
  core::TraceBatch batch(n_channels);
  batch.resize(rows);
  for (auto& pt : batch.plaintexts()) {
    rng.fill_bytes(pt);
  }
  for (auto& ct : batch.ciphertexts()) {
    rng.fill_bytes(ct);
  }
  for (std::size_t c = 0; c < n_channels; ++c) {
    for (auto& v : batch.column(c)) {
      v = rng.gaussian(0.0, 1.0);  // off-grid: the codec must refuse
    }
  }

  const std::string path = temp_path("v2_identity.pstr");
  TraceFileWriter writer(
      path,
      {.channels = {util::FourCc("PHPC"), util::FourCc("PMVC"),
                    util::FourCc("PSTR")},
       .chunk_capacity = chunk_rows,
       .channel_codecs =
           uniform_channel_codecs(n_channels, ColumnCodec::delta_bitpack)});
  writer.append(batch);
  writer.finalize();
  EXPECT_EQ(writer.channel_stored_bytes(), writer.channel_raw_bytes());

  for (const ReaderMode mode : {ReaderMode::automatic, ReaderMode::stream}) {
    TraceFileReader reader(path, mode);
    core::TraceBatch loaded(n_channels);
    reader.read_rows(0, rows, loaded);
    expect_batches_bit_identical(loaded, batch);
  }
}

TEST(PstrV2, BitFlipInCompressedBlockHeaderIsLoudError) {
  for (const ReaderMode mode : {ReaderMode::automatic, ReaderMode::stream}) {
    const std::string path =
        write_v2_file("v2_flip_header.pstr", quantized_batch(11));
    auto bytes = slurp(path);
    // Channel 0 (column 2) must actually be compressed, or the test
    // would pass vacuously against an identity block.
    ASSERT_EQ(get_u32(dir_entry(bytes, 2)),
              static_cast<std::uint32_t>(ColumnCodec::delta_bitpack));
    // Corrupt the encoded block's count field: decode fails structurally.
    const std::size_t off = column_block_offset(bytes, 2);
    bytes[off] = static_cast<char>(bytes[off] ^ 0x01);
    dump(path, bytes);
    expect_chunk0_fails(path, "corrupt compressed block", mode);
  }
}

TEST(PstrV2, BitFlipInPackedDeltasFailsDecodedPayloadCrc) {
  for (const ReaderMode mode : {ReaderMode::automatic, ReaderMode::stream}) {
    const std::string path =
        write_v2_file("v2_flip_payload.pstr", quantized_batch(13));
    auto bytes = slurp(path);
    ASSERT_EQ(get_u32(dir_entry(bytes, 2)),
              static_cast<std::uint32_t>(ColumnCodec::delta_bitpack));
    // Flip a packed delta bit past the 24-byte codec header: the block
    // stays structurally valid and decodes — to different values, which
    // the CRC over the *decoded* payload must catch.
    ASSERT_GT(get_u64(dir_entry(bytes, 2) + 16), std::uint64_t{24});
    const std::size_t off = column_block_offset(bytes, 2) + 24;
    bytes[off] = static_cast<char>(bytes[off] ^ 0x10);
    dump(path, bytes);
    expect_chunk0_fails(path, "payload CRC mismatch", mode);
  }
}

TEST(PstrV2, DirectoryCorruptionIsLoudError) {
  // Unknown codec id.
  {
    const std::string path =
        write_v2_file("v2_bad_codec.pstr", quantized_batch(17));
    auto bytes = slurp(path);
    put_u32(dir_entry(bytes, 2), 7);
    dump(path, bytes);
    for (const ReaderMode mode :
         {ReaderMode::automatic, ReaderMode::stream}) {
      expect_chunk0_fails(path, "unknown codec 7", mode);
    }
  }
  // stored_bytes beyond the chunk's byte budget.
  {
    const std::string path =
        write_v2_file("v2_bad_size.pstr", quantized_batch(19));
    auto bytes = slurp(path);
    put_u64(dir_entry(bytes, 2) + 16, 0xfffffffffffff000ull);
    dump(path, bytes);
    for (const ReaderMode mode :
         {ReaderMode::automatic, ReaderMode::stream}) {
      expect_chunk0_fails(path, "corrupt chunk 0", mode);
    }
  }
}

TEST(PstrV2, PrefetchOnAndOffProduceBitIdenticalBatches) {
  const core::TraceBatch original = quantized_batch(23);
  const std::string path = write_v2_file("v2_prefetch.pstr", original);

  core::TraceBatch with_prefetch(n_channels);
  core::TraceBatch without(n_channels);
  {
    FileTraceSource source(path, FileSourceOptions{
                                     .prefetch = PrefetchMode::on});
    EXPECT_TRUE(source.prefetch_enabled());
    with_prefetch.resize(rows);
    source.collect_batch(with_prefetch);
  }
  {
    FileTraceSource source(path, FileSourceOptions{
                                     .prefetch = PrefetchMode::off});
    EXPECT_FALSE(source.prefetch_enabled());
    without.resize(rows);
    source.collect_batch(without);
  }
  expect_batches_bit_identical(with_prefetch, without);
  expect_batches_bit_identical(with_prefetch, original);
}

TEST(PstrV2, NoMmapEnvForcesStreamFallback) {
  const core::TraceBatch original = quantized_batch(29);
  const std::string path = write_v2_file("v2_no_mmap.pstr", original);

  ASSERT_EQ(::setenv("PSC_NO_MMAP", "1", 1), 0);
  {
    // automatic now takes the buffered-fread path...
    TraceFileReader reader(path);
    EXPECT_FALSE(reader.mapped());
    core::TraceBatch loaded(n_channels);
    reader.read_rows(0, rows, loaded);
    expect_batches_bit_identical(loaded, original);

    // ...and the full replay source (prefetch included) works on it.
    FileTraceSource source(path);
    EXPECT_FALSE(source.reader().mapped());
    core::TraceBatch replayed(n_channels);
    replayed.resize(rows);
    source.collect_batch(replayed);
    expect_batches_bit_identical(replayed, original);

    // Asking for mmap explicitly still maps: the env knob only steers
    // `automatic`.
    TraceFileReader mapped_reader(path, ReaderMode::mmap);
    EXPECT_TRUE(mapped_reader.mapped());
  }
  ASSERT_EQ(::unsetenv("PSC_NO_MMAP"), 0);
  EXPECT_TRUE(TraceFileReader(path).mapped());
}

void expect_results_identical(const core::ModelResult& a,
                              const core::ModelResult& b) {
  EXPECT_EQ(a.true_ranks, b.true_ranks);
  EXPECT_EQ(a.best_round_key, b.best_round_key);
  ASSERT_EQ(a.ge_bits, b.ge_bits);
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t g = 0; g < 256; ++g) {
      ASSERT_EQ(a.bytes[i].correlation[g], b.bytes[i].correlation[g])
          << "byte " << i << " guess " << g;
    }
  }
}

// The v2 acceptance test: a live campaign teed to a *compressed*
// recording replays bit-identically through the prefetching source, in
// both reader modes. Compression and async decode change bytes on disk
// and the schedule — never a single analyzed bit.
TEST(PstrV2, ReplayedCpaFromV2FileBitIdenticalToLiveRecording) {
  const std::string path = temp_path("v2_recorded_campaign.pstr");
  const std::vector<power::PowerModel> models = {power::PowerModel::rd0_hw};
  const core::LiveSourceConfig live_config{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::user_space(),
  };

  util::Xoshiro256 rng(47);
  aes::Block victim_key;
  rng.fill_bytes(victim_key);
  const auto round_keys = aes::Aes128::expand_key(victim_key);

  core::LiveTraceSource source(live_config, victim_key, 7);
  const auto& channels = source.keys();
  const std::size_t column = static_cast<std::size_t>(
      std::find(channels.begin(), channels.end(), util::FourCc("PHPC")) -
      channels.begin());
  ASSERT_LT(column, channels.size());

  constexpr std::size_t total = 2000;
  core::ModelResult live_result;
  std::uint64_t stored_bytes = 0;
  std::uint64_t raw_bytes = 0;
  {
    TraceFileWriter writer(
        path,
        {.channels = channels,
         .chunk_capacity = 256,
         .metadata = device_metadata(live_config.profile.name,
                                     live_config.profile.os_version),
         .channel_codecs = uniform_channel_codecs(
             channels.size(), ColumnCodec::delta_bitpack)});
    core::CpaSink cpa(models, {column});
    RecordingSink recorder(writer);
    core::MultiSink multi({&cpa, &recorder});

    core::TraceBatch batch(channels.size());
    std::size_t produced = 0;
    while (produced < total) {
      const std::size_t chunk = std::min<std::size_t>(170, total - produced);
      core::collect_random_batch(source, chunk, rng, batch);
      multi.consume(batch, core::BatchLabel::unlabeled());
      produced += chunk;
    }
    writer.finalize();
    stored_bytes = writer.channel_stored_bytes();
    raw_bytes = writer.channel_raw_bytes();
    live_result = cpa.engine(0).analyze(models[0], round_keys);
  }
  // Real recorded sensor grids must compress — this guards the codec
  // against drifting away from what the measurement path emits.
  EXPECT_LT(stored_bytes * 2, raw_bytes);

  for (const ReaderMode mode : {ReaderMode::automatic, ReaderMode::stream}) {
    FileTraceSource replay(
        path, FileSourceOptions{.mode = mode, .prefetch = PrefetchMode::on});
    EXPECT_EQ(replay.reader().format_version(), format_version_v2);
    ASSERT_EQ(replay.remaining(), total);
    util::Xoshiro256 unused_rng(0);  // replay returns recorded plaintexts
    const core::CpaEngine engine = core::accumulate_cpa(
        replay, util::FourCc("PHPC"), models, /*count=*/0, unused_rng);
    expect_results_identical(engine.analyze(models[0], round_keys),
                             live_result);
  }
}

}  // namespace
}  // namespace psc::store
