// DatasetSummary / TraceFileReader::column_stats: whole-file metadata
// (trace counts, per-column codec and compression stats) must come from
// chunk headers and column directories alone — never from decoding a
// chunk payload. Proven the hard way: corrupt a payload byte, summarize
// successfully, then watch the actual chunk read fail its CRC.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstring>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "store/dataset_summary.h"
#include "store/shared_mapping.h"
#include "store/trace_file_reader.h"
#include "store/trace_file_writer.h"
#include "util/rng.h"

namespace psc::store {
namespace {

constexpr std::size_t rows = 700;
constexpr std::size_t chunk_rows = 128;
constexpr std::size_t n_channels = 2;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

core::TraceBatch make_batch() {
  util::Xoshiro256 rng(31);
  core::TraceBatch batch(n_channels);
  batch.resize(rows);
  for (auto& pt : batch.plaintexts()) {
    rng.fill_bytes(pt);
  }
  for (auto& ct : batch.ciphertexts()) {
    rng.fill_bytes(ct);
  }
  // Float32-truncated values on a quantization grid — the sensor shape
  // delta_bitpack compresses (same recipe as pstr_v2_test).
  const double steps[n_channels] = {1e-6, 1e-3};
  for (std::size_t c = 0; c < n_channels; ++c) {
    double level = 4.0;
    for (auto& v : batch.column(c)) {
      level += rng.gaussian(0.0, 50 * steps[c]);
      v = static_cast<double>(
          static_cast<float>(std::round(level / steps[c]) * steps[c]));
    }
  }
  return batch;
}

std::string write_file(const std::string& name, bool v2) {
  const std::string path = temp_path(name);
  TraceFileWriterConfig config{
      .channels = {util::FourCc("PHPC"), util::FourCc("PMVC")},
      .chunk_capacity = chunk_rows,
      .metadata = {{"device", "test"}}};
  if (v2) {
    config.channel_codecs =
        uniform_channel_codecs(n_channels, ColumnCodec::delta_bitpack);
  }
  TraceFileWriter writer(path, config);
  writer.append(make_batch());
  writer.finalize();
  return path;
}

TEST(DatasetSummary, V2SummaryMatchesWriterAccounting) {
  const std::string path = write_file("summary_v2.pstr", /*v2=*/true);
  TraceFileReader reader(path);
  const DatasetSummary summary = summarize_dataset(reader);

  EXPECT_EQ(summary.path, path);
  EXPECT_EQ(summary.format_version, format_version_v2);
  EXPECT_EQ(summary.trace_count, rows);
  EXPECT_EQ(summary.chunk_count, (rows + chunk_rows - 1) / chunk_rows);
  EXPECT_EQ(summary.chunk_capacity, chunk_rows);
  EXPECT_EQ(summary.channels, (std::vector<std::string>{"PHPC", "PMVC"}));
  EXPECT_EQ(summary.metadata, (Metadata{{"device", "test"}}));

  // Columns: plaintext, ciphertext, then each channel, in order.
  ASSERT_EQ(summary.columns.size(), 2 + n_channels);
  EXPECT_EQ(summary.columns[0].name, "plaintext");
  EXPECT_EQ(summary.columns[1].name, "ciphertext");
  EXPECT_EQ(summary.columns[2].name, "PHPC");
  EXPECT_EQ(summary.columns[3].name, "PMVC");
  // AES blocks are incompressible identity columns: 16 bytes/row.
  EXPECT_EQ(summary.columns[0].raw_bytes, rows * 16);
  EXPECT_EQ(summary.columns[0].stored_bytes, rows * 16);
  EXPECT_EQ(summary.columns[0].chunks_coded, 0u);
  // Quantized channels compress: stored < raw, every chunk coded.
  for (std::size_t c = 2; c < summary.columns.size(); ++c) {
    EXPECT_EQ(summary.columns[c].raw_bytes, rows * 8);
    EXPECT_LT(summary.columns[c].stored_bytes, summary.columns[c].raw_bytes);
    EXPECT_EQ(summary.columns[c].chunks_coded, summary.chunk_count);
    EXPECT_GT(summary.columns[c].ratio(), 1.0);
  }
  EXPECT_GT(summary.ratio(), 1.0);

  // The formatter prints one line per column plus the totals.
  std::ostringstream os;
  print_dataset_summary(os, summary, "  ");
  const std::string text = os.str();
  EXPECT_NE(text.find("delta_bitpack"), std::string::npos);
  EXPECT_NE(text.find("payload"), std::string::npos);
  EXPECT_NE(text.find("device = test"), std::string::npos);
}

TEST(DatasetSummary, V1ColumnsAreArithmeticIdentity) {
  const std::string path = write_file("summary_v1.pstr", /*v2=*/false);
  TraceFileReader reader(path);
  const DatasetSummary summary = summarize_dataset(reader);
  EXPECT_EQ(summary.format_version, format_version_v1);
  ASSERT_EQ(summary.columns.size(), 2 + n_channels);
  for (const DatasetColumnSummary& col : summary.columns) {
    EXPECT_EQ(col.chunks_coded, 0u);
    EXPECT_EQ(col.raw_bytes, col.stored_bytes);
    EXPECT_EQ(col.ratio(), 1.0);
  }
  EXPECT_EQ(summary.columns[2].raw_bytes, rows * 8);
}

// The satellite contract: metadata never decodes payloads. A flipped
// payload byte leaves open + column_stats + summarize working, while an
// actual chunk read fails its CRC loudly.
TEST(DatasetSummary, SummarizingNeverTouchesChunkPayloads) {
  const std::string path = write_file("summary_corrupt.pstr", /*v2=*/true);

  std::vector<char> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  // Find the second chunk by its magic and flip a byte well inside its
  // payload (past the header and the column directory).
  std::size_t victim = bytes.size();
  int seen = 0;
  for (std::size_t i = 0; i + 4 < bytes.size(); ++i) {
    if (std::memcmp(bytes.data() + i, "CHNK", 4) == 0 && ++seen == 2) {
      victim = i + chunk_header_bytes +
               chunk_column_count(n_channels) * column_entry_bytes + 48;
      break;
    }
  }
  ASSERT_LT(victim, bytes.size());
  bytes[victim] = static_cast<char>(bytes[victim] ^ 0x20);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  TraceFileReader reader(path);  // header walk: fine
  const DatasetSummary summary = summarize_dataset(reader);  // no decode
  EXPECT_EQ(summary.trace_count, rows);
  EXPECT_EQ(summary.columns.size(), 2 + n_channels);
  EXPECT_EQ(reader.chunk_rows(1), chunk_rows);  // per-chunk header access

  EXPECT_NO_THROW(reader.chunk(0));          // undamaged chunk decodes
  EXPECT_THROW(reader.chunk(1), StoreError);  // flipped chunk: loud CRC
}

TEST(DatasetSummary, SharedMappingReadersShareBytesAndSummarize) {
  const std::string path = write_file("summary_shared.pstr", /*v2=*/true);
  const auto mapping = SharedMapping::open(path);
  ASSERT_NE(mapping, nullptr);

  // N readers over one mapping: same bytes, independent cursors.
  TraceFileReader a(mapping);
  TraceFileReader b(mapping);
  EXPECT_EQ(a.trace_count(), rows);
  EXPECT_EQ(b.trace_count(), rows);
  EXPECT_EQ(summarize_dataset(a).stored_bytes_total(),
            summarize_dataset(b).stored_bytes_total());
  EXPECT_GE(mapping.use_count(), 3);  // local + two readers

  EXPECT_THROW(TraceFileReader(std::shared_ptr<const SharedMapping>{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace psc::store
