// ChunkCache unit + reader-integration tests: decode-once semantics
// (including under concurrency), LRU eviction driven by the byte budget,
// ref-counted pins surviving eviction, drop_dataset, loud decode
// failures that publish nothing, and TraceFileReader routing v2 chunk
// decodes through a shared cache bit-identically to private decodes.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/trace_batch.h"
#include "store/chunk_cache.h"
#include "store/pstr_format.h"
#include "store/shared_mapping.h"
#include "store/trace_file_reader.h"
#include "store/trace_file_writer.h"
#include "util/rng.h"

namespace psc::store {
namespace {

// A recognizable payload: `size` bytes of (dataset ^ chunk ^ i).
std::vector<std::byte> pattern(std::uint64_t dataset, std::size_t chunk,
                               std::size_t size) {
  std::vector<std::byte> out(size);
  for (std::size_t i = 0; i < size; ++i) {
    out[i] = static_cast<std::byte>((dataset ^ chunk ^ i) & 0xff);
  }
  return out;
}

ChunkCache::Payload fill(ChunkCache& cache, std::uint64_t dataset,
                         std::size_t chunk, std::size_t size) {
  return cache.get_or_decode(dataset, chunk, [&](std::vector<std::byte>& d) {
    d = pattern(dataset, chunk, size);
  });
}

TEST(ChunkCache, DecodeOnceThenHits) {
  ChunkCache cache(1 << 20);
  int decodes = 0;
  const auto decode = [&](std::vector<std::byte>& d) {
    ++decodes;
    d = pattern(1, 0, 100);
  };
  const ChunkCache::Payload first = cache.get_or_decode(1, 0, decode);
  const ChunkCache::Payload again = cache.get_or_decode(1, 0, decode);
  EXPECT_EQ(decodes, 1);
  EXPECT_EQ(first.get(), again.get());  // one shared immutable buffer
  EXPECT_EQ(*first, pattern(1, 0, 100));

  const ChunkCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.resident_bytes, 100u);
  EXPECT_EQ(cache.capacity_bytes(), std::size_t{1} << 20);
}

TEST(ChunkCache, DistinctKeysAreDistinctEntries) {
  ChunkCache cache(1 << 20);
  const auto a = fill(cache, 1, 0, 10);
  const auto b = fill(cache, 1, 1, 10);
  const auto c = fill(cache, 2, 0, 10);  // same chunk index, other dataset
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().entries, 3u);
}

TEST(ChunkCache, LruEvictionUnderPressure) {
  // Budget fits exactly two 100-byte entries.
  ChunkCache cache(200);
  fill(cache, 1, 0, 100);
  fill(cache, 1, 1, 100);
  EXPECT_EQ(cache.stats().evictions, 0u);

  // Touch chunk 0 so chunk 1 is the LRU victim.
  fill(cache, 1, 0, 100);
  EXPECT_EQ(cache.stats().hits, 1u);

  fill(cache, 1, 2, 100);  // over budget: evicts chunk 1
  ChunkCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.resident_bytes, 200u);

  // Chunk 0 survived (hit), chunk 1 was evicted (fresh miss).
  fill(cache, 1, 0, 100);
  EXPECT_EQ(cache.stats().hits, 2u);
  fill(cache, 1, 1, 100);
  EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(ChunkCache, PinnedPayloadSurvivesEviction) {
  ChunkCache cache(100);
  const ChunkCache::Payload pinned = fill(cache, 1, 0, 100);
  // Both later entries overflow the budget and push chunk 0 out.
  fill(cache, 1, 1, 100);
  fill(cache, 1, 2, 100);
  EXPECT_GE(cache.stats().evictions, 2u);
  // The pin keeps the evicted bytes alive and intact.
  EXPECT_EQ(*pinned, pattern(1, 0, 100));
}

TEST(ChunkCache, OversizedEntryIsEvictedButStillServed) {
  ChunkCache cache(10);  // smaller than any entry
  const ChunkCache::Payload p = fill(cache, 1, 0, 100);
  EXPECT_EQ(*p, pattern(1, 0, 100));
  // The entry cannot stay resident, but the caller still got the bytes.
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
}

TEST(ChunkCache, DropDatasetRemovesOnlyThatDataset) {
  ChunkCache cache(1 << 20);
  fill(cache, 1, 0, 50);
  fill(cache, 1, 1, 50);
  fill(cache, 2, 0, 50);
  cache.drop_dataset(1);
  ChunkCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.resident_bytes, 50u);
  // Dataset 2 is untouched; dataset 1 decodes fresh.
  fill(cache, 2, 0, 50);
  EXPECT_EQ(cache.stats().hits, 1u);
  fill(cache, 1, 0, 50);
  EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(ChunkCache, ThrowingDecodePublishesNothing) {
  ChunkCache cache(1 << 20);
  const auto boom = [](std::vector<std::byte>&) {
    throw std::runtime_error("corrupt chunk");
  };
  EXPECT_THROW(cache.get_or_decode(1, 0, boom), std::runtime_error);
  EXPECT_EQ(cache.stats().entries, 0u);
  // The key is free again: the next caller decodes (successfully) anew.
  const ChunkCache::Payload p = fill(cache, 1, 0, 10);
  EXPECT_EQ(*p, pattern(1, 0, 10));
}

TEST(ChunkCache, ConcurrentCallersDecodeExactlyOnce) {
  ChunkCache cache(1 << 20);
  constexpr int threads = 8;
  constexpr std::size_t chunks = 4;
  std::atomic<int> decodes{0};
  std::atomic<int> ready{0};

  std::vector<std::array<ChunkCache::Payload, chunks>> got(threads);
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < threads) {
      }
      for (std::size_t c = 0; c < chunks; ++c) {
        got[t][c] = cache.get_or_decode(7, c, [&](std::vector<std::byte>& d) {
          decodes.fetch_add(1);
          d = pattern(7, c, 256);
        });
      }
    });
  }
  for (std::thread& th : pool) {
    th.join();
  }

  // Every chunk was decoded exactly once; every thread shares the same
  // immutable buffer and sees the same bytes.
  EXPECT_EQ(decodes.load(), static_cast<int>(chunks));
  for (std::size_t c = 0; c < chunks; ++c) {
    for (int t = 0; t < threads; ++t) {
      ASSERT_EQ(got[t][c].get(), got[0][c].get());
      ASSERT_EQ(*got[t][c], pattern(7, c, 256));
    }
  }
  const ChunkCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, chunks);
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(threads) * chunks);
}

// ---------- TraceFileReader integration ----------

constexpr std::size_t rows = 1200;
constexpr std::size_t chunk_rows = 128;
constexpr std::size_t n_channels = 2;

// Quantized channels so delta_bitpack engages and every chunk actually
// goes through a decode (no identity zero-copy shortcut).
std::string write_compressed(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  util::Xoshiro256 rng(4242);
  core::TraceBatch batch(n_channels);
  batch.resize(rows);
  for (auto& pt : batch.plaintexts()) {
    rng.fill_bytes(pt);
  }
  for (auto& ct : batch.ciphertexts()) {
    rng.fill_bytes(ct);
  }
  for (std::size_t c = 0; c < n_channels; ++c) {
    double level = 1.0 + static_cast<double>(c);
    for (auto& v : batch.column(c)) {
      level += rng.gaussian(0.0, 1e-4);
      v = static_cast<double>(
          static_cast<float>(std::round(level * 1e6) / 1e6));
    }
  }
  TraceFileWriter writer(
      path, {.channels = {util::FourCc("PHPC"), util::FourCc("PMVC")},
             .chunk_capacity = chunk_rows,
             .channel_codecs = uniform_channel_codecs(
                 n_channels, ColumnCodec::delta_bitpack)});
  writer.append(batch);
  writer.finalize();
  return path;
}

void expect_chunks_bit_identical(ChunkView a, ChunkView b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.channels(), b.channels());
  ASSERT_EQ(a.row_begin(), b.row_begin());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    ASSERT_EQ(a.plaintexts()[r], b.plaintexts()[r]);
    ASSERT_EQ(a.ciphertexts()[r], b.ciphertexts()[r]);
  }
  for (std::size_t c = 0; c < a.channels(); ++c) {
    for (std::size_t r = 0; r < a.rows(); ++r) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(a.column(c)[r]),
                std::bit_cast<std::uint64_t>(b.column(c)[r]))
          << "channel " << c << " row " << r;
    }
  }
}

TEST(ChunkCacheReader, SharedCacheDecodesOnceAndMatchesPrivateDecode) {
  const std::string path =
      write_compressed("chunk_cache_shared.pstr");
  const auto mapping = SharedMapping::open(path);
  const auto cache = std::make_shared<ChunkCache>(std::size_t{64} << 20);

  TraceFileReader plain(mapping);  // private decodes, the reference
  TraceFileReader cached_a(mapping);
  TraceFileReader cached_b(mapping);
  cached_a.set_chunk_cache(cache);
  cached_b.set_chunk_cache(cache);

  const std::size_t chunks = plain.chunk_count();
  ASSERT_GT(chunks, 2u);
  TraceFileReader::ChunkBuffer buf_a;
  TraceFileReader::ChunkBuffer buf_b;
  for (std::size_t i = 0; i < chunks; ++i) {
    SCOPED_TRACE("chunk " + std::to_string(i));
    // Reader A via read_chunk_into, reader B via chunk(): both cache
    // paths serve bytes bit-identical to a private decode.
    expect_chunks_bit_identical(plain.chunk(i),
                                cached_a.read_chunk_into(i, buf_a));
    expect_chunks_bit_identical(cached_a.read_chunk_into(i, buf_a),
                                cached_b.chunk(i));
  }

  // Both readers walked every chunk (reader A twice per chunk), but each
  // chunk was decoded exactly once.
  const ChunkCache::Stats stats = cache->stats();
  EXPECT_EQ(stats.misses, chunks);
  EXPECT_EQ(stats.hits, 2 * chunks);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(ChunkCacheReader, TinyCacheStillServesBitIdenticalBytes) {
  const std::string path = write_compressed("chunk_cache_tiny.pstr");
  const auto mapping = SharedMapping::open(path);
  // A budget below one decoded chunk: every access evicts, none corrupts.
  const auto cache = std::make_shared<ChunkCache>(1024);

  TraceFileReader plain(mapping);
  TraceFileReader cached(mapping);
  cached.set_chunk_cache(cache);

  TraceFileReader::ChunkBuffer buf;
  for (std::size_t i = 0; i < plain.chunk_count(); ++i) {
    SCOPED_TRACE("chunk " + std::to_string(i));
    expect_chunks_bit_identical(plain.chunk(i),
                                cached.read_chunk_into(i, buf));
  }
  EXPECT_GT(cache->stats().evictions, 0u);
}

TEST(ChunkCacheReader, FileBackedReaderRejectsCache) {
  const std::string path = write_compressed("chunk_cache_reject.pstr");
  TraceFileReader reader(path);  // owns its mapping: no stable dataset id
  EXPECT_THROW(
      reader.set_chunk_cache(std::make_shared<ChunkCache>(1 << 20)),
      std::logic_error);
}

TEST(ChunkCacheReader, MappingIdsAreUniquePerOpen) {
  const std::string path = write_compressed("chunk_cache_ids.pstr");
  const auto a = SharedMapping::open(path);
  const auto b = SharedMapping::open(path);
  EXPECT_NE(a->id(), 0u);
  EXPECT_NE(a->id(), b->id());  // same file, distinct cache keyspace
}

}  // namespace
}  // namespace psc::store
