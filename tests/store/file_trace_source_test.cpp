// FileTraceSource replay tests — the store subsystem's acceptance
// criterion: a CPA campaign replayed from a file recorded by
// RecordingSink is bit-identical to the live campaign that recorded it,
// sequentially and when ParallelRunner workers replay disjoint chunk
// ranges of the same file.
#include "store/file_trace_source.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/analysis_sink.h"
#include "core/parallel.h"
#include "core/trace_source.h"
#include "store/trace_file_writer.h"

namespace psc::store {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

void expect_results_identical(const core::ModelResult& a,
                              const core::ModelResult& b) {
  EXPECT_EQ(a.true_ranks, b.true_ranks);
  EXPECT_EQ(a.best_round_key, b.best_round_key);
  ASSERT_EQ(a.ge_bits, b.ge_bits);
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t g = 0; g < 256; ++g) {
      ASSERT_EQ(a.bytes[i].correlation[g], b.bytes[i].correlation[g])
          << "byte " << i << " guess " << g;
    }
  }
}

// The acceptance test: one live acquisition pass feeds a CpaSink and a
// RecordingSink through the same MultiSink (exactly how a campaign tees
// its stream to disk), then the recorded file replays through
// FileTraceSource into a fresh engine. Key ranks, GE and every guess
// correlation must match bit-for-bit.
TEST(FileTraceSource, ReplayedCpaCampaignBitIdenticalToLiveRecording) {
  const std::string path = temp_path("recorded_campaign.pstr");
  const std::vector<power::PowerModel> models = {power::PowerModel::rd0_hw};
  const core::LiveSourceConfig live_config{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::user_space(),
  };

  util::Xoshiro256 rng(41);
  aes::Block victim_key;
  rng.fill_bytes(victim_key);
  const auto round_keys = aes::Aes128::expand_key(victim_key);

  core::LiveTraceSource source(live_config, victim_key, 7);
  const auto& channels = source.keys();
  const std::size_t column = static_cast<std::size_t>(
      std::find(channels.begin(), channels.end(), util::FourCc("PHPC")) -
      channels.begin());
  ASSERT_LT(column, channels.size());

  constexpr std::size_t total = 2000;
  core::ModelResult live_result;
  {
    TraceFileWriter writer(
        path, {.channels = channels,
               .chunk_capacity = 256,
               .metadata = device_metadata(live_config.profile.name,
                                           live_config.profile.os_version)});
    core::CpaSink cpa(models, {column});
    RecordingSink recorder(writer);
    core::MultiSink multi({&cpa, &recorder});

    core::TraceBatch batch(channels.size());
    std::size_t produced = 0;
    while (produced < total) {
      const std::size_t chunk = std::min<std::size_t>(170, total - produced);
      core::collect_random_batch(source, chunk, rng, batch);
      multi.consume(batch, core::BatchLabel::unlabeled());
      produced += chunk;
    }
    writer.finalize();
    live_result = cpa.engine(0).analyze(models[0], round_keys);
  }

  for (const ReaderMode mode : {ReaderMode::automatic, ReaderMode::stream}) {
    FileTraceSource replay(path, mode);
    ASSERT_EQ(replay.remaining(), total);
    util::Xoshiro256 unused_rng(0);  // replay returns recorded plaintexts
    const core::CpaEngine engine = core::accumulate_cpa(
        replay, util::FourCc("PHPC"), models, /*count=*/0, unused_rng);
    expect_results_identical(engine.analyze(models[0], round_keys),
                             live_result);
  }
}

// Sharded out-of-core replay: ParallelRunner workers each replay a
// disjoint chunk-aligned row range of one file; merging shard engines in
// shard order equals sequential replay (same contract as live shards).
TEST(FileTraceSource, ShardedReplayMatchesSequentialReplay) {
  const std::string path = temp_path("sharded_replay.pstr");
  const std::vector<power::PowerModel> models = {power::PowerModel::rd0_hw};

  util::Xoshiro256 rng(42);
  aes::Block victim_key;
  rng.fill_bytes(victim_key);
  const auto round_keys = aes::Aes128::expand_key(victim_key);

  // Record a synthetic capture: 1 channel, 23 chunks of 64 (+ partial).
  core::SyntheticTraceSource synth({.noise_sigma = 0.3}, victim_key, 9);
  {
    TraceFileWriter writer(path, {.channels = synth.keys(),
                                  .chunk_capacity = 64});
    core::TraceBatch batch(1);
    std::size_t produced = 0;
    while (produced < 1500) {
      const std::size_t chunk = std::min<std::size_t>(200, 1500 - produced);
      core::collect_random_batch(synth, chunk, rng, batch);
      writer.append(batch);
      produced += chunk;
    }
    writer.finalize();
  }

  // Sequential replay reference.
  core::CpaEngine sequential(models);
  {
    FileTraceSource replay(path);
    util::Xoshiro256 unused_rng(0);
    sequential = core::accumulate_cpa(replay, synth.keys()[0], models, 0,
                                      unused_rng);
  }

  // Shard-range properties: disjoint, covering, chunk-aligned.
  const std::size_t shards = 4;
  {
    TraceFileReader probe(path);
    std::size_t next = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      const auto [begin, count] = shard_row_range(probe, shards, s);
      EXPECT_EQ(begin, next);
      if (count > 0) {
        EXPECT_EQ(begin % 64, 0u);  // whole chunks per shard
      }
      next = begin + count;
    }
    EXPECT_EQ(next, probe.trace_count());
  }

  // Parallel replay: each worker owns its own reader over its range.
  core::ParallelRunner runner({.workers = 4, .shards = shards});
  auto engines = runner.map([&](std::size_t s) {
    auto reader = std::make_unique<TraceFileReader>(path);
    const auto [begin, count] = shard_row_range(*reader, shards, s);
    FileTraceSource replay(std::move(reader), begin, count);
    util::Xoshiro256 unused_rng(0);
    return core::accumulate_cpa(replay, synth.keys()[0], models, 0,
                                unused_rng);
  });

  core::CpaEngine merged = std::move(engines[0]);
  for (std::size_t s = 1; s < engines.size(); ++s) {
    merged.merge(engines[s]);
  }
  EXPECT_EQ(merged.trace_count(), sequential.trace_count());

  const core::ModelResult a = merged.analyze(models[0], round_keys);
  const core::ModelResult b = sequential.analyze(models[0], round_keys);
  // Merge folds shard aggregates, so correlations agree to accumulator
  // precision (same contract as CpaEngine::merge); ranks must agree.
  EXPECT_EQ(a.true_ranks, b.true_ranks);
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t g = 0; g < 256; ++g) {
      ASSERT_NEAR(a.bytes[i].correlation[g], b.bytes[i].correlation[g],
                  1e-12);
    }
  }
}

TEST(FileTraceSource, RecordingSinkFilterKeepsOnlyCpaConsumableBatches) {
  const std::string path = temp_path("filtered.pstr");
  util::Xoshiro256 rng(43);
  aes::Block key;
  rng.fill_bytes(key);
  core::SyntheticTraceSource synth({}, key, 1);

  {
    TraceFileWriter writer(path, {.channels = synth.keys()});
    RecordingSink recorder(writer,
                           RecordingSink::Filter::random_plaintexts_only);
    core::TraceBatch batch(1);
    core::collect_random_batch(synth, 40, rng, batch);
    recorder.consume(batch, core::BatchLabel::unlabeled());
    recorder.consume(
        batch, core::BatchLabel::tvla(core::PlaintextClass::all_zeros, false));
    recorder.consume(
        batch, core::BatchLabel::tvla(core::PlaintextClass::random_pt, true));
    writer.finalize();
  }
  TraceFileReader reader(path);
  // The fixed-class TVLA set was skipped; the two CPA-consumable batches
  // were recorded.
  EXPECT_EQ(reader.trace_count(), 80u);
}

TEST(FileTraceSource, CollectWalksRowsInOrderAndExhausts) {
  const std::string path = temp_path("collect.pstr");
  util::Xoshiro256 rng(44);
  aes::Block key;
  rng.fill_bytes(key);
  core::SyntheticTraceSource synth({}, key, 2);
  core::TraceSet recorded(synth.keys());
  {
    TraceFileWriter writer(path, {.channels = synth.keys(),
                                  .chunk_capacity = 8});
    core::TraceBatch batch(1);
    core::collect_random_batch(synth, 20, rng, batch);
    recorded.append(batch);
    writer.append(batch);
    writer.finalize();
  }

  FileTraceSource replay(path);
  aes::Block ignored{};
  for (std::size_t i = 0; i < 20; ++i) {
    ASSERT_EQ(replay.remaining(), 20 - i);
    const core::TraceRecord record = replay.collect(ignored);
    ASSERT_EQ(record.plaintext, recorded[i].plaintext);
    ASSERT_EQ(record.ciphertext, recorded[i].ciphertext);
    ASSERT_EQ(record.values[0], recorded[i].values[0]);
  }
  EXPECT_THROW(replay.collect(ignored), std::out_of_range);
}

}  // namespace
}  // namespace psc::store
