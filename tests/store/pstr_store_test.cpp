// PSTR round-trip tests: the on-disk store must reproduce the columnar
// TraceBatch bit-for-bit through both reader paths (mmap and buffered
// stream), across chunk boundaries, and stay out-of-core — resident
// reader memory is one chunk no matter how large the file is.
#include "store/trace_file_reader.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "store/trace_file_writer.h"
#include "util/rng.h"

namespace psc::store {
namespace {

core::TraceBatch random_batch(util::Xoshiro256& rng, std::size_t n,
                              std::size_t channels) {
  core::TraceBatch batch(channels);
  batch.resize(n);
  for (auto& pt : batch.plaintexts()) {
    rng.fill_bytes(pt);
  }
  for (auto& ct : batch.ciphertexts()) {
    rng.fill_bytes(ct);
  }
  for (std::size_t c = 0; c < channels; ++c) {
    for (auto& v : batch.column(c)) {
      v = rng.uniform(-10.0, 10.0);
    }
  }
  return batch;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

void expect_batches_identical(const core::TraceBatch& a,
                              const core::TraceBatch& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.channels(), b.channels());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.plaintexts()[i], b.plaintexts()[i]) << "row " << i;
    ASSERT_EQ(a.ciphertexts()[i], b.ciphertexts()[i]) << "row " << i;
  }
  for (std::size_t c = 0; c < a.channels(); ++c) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a.column(c)[i], b.column(c)[i]) << "col " << c << " row " << i;
    }
  }
}

const std::vector<util::FourCc> two_channels = {util::FourCc("PHPC"),
                                                util::FourCc("PMVC")};

TEST(PstrStore, RoundTripsBitExactAcrossChunkBoundaries) {
  const std::string path = temp_path("roundtrip.pstr");
  util::Xoshiro256 rng(1);
  const core::TraceBatch data = random_batch(rng, 180, 2);

  // chunk_capacity 64 and appends of 50/100/30: every chunk boundary
  // falls inside an appended batch, so the writer's internal slicing is
  // exercised in both directions.
  TraceFileWriter writer(path, {.channels = two_channels,
                                .chunk_capacity = 64,
                                .metadata = device_metadata("Test M2",
                                                            "14.0")});
  core::TraceBatch piece(2);
  for (const auto& [begin, count] :
       {std::pair<std::size_t, std::size_t>{0, 50}, {50, 100}, {150, 30}}) {
    piece.clear();
    piece.append(data, begin, count);
    writer.append(piece);
  }
  EXPECT_EQ(writer.trace_count(), 180u);
  writer.finalize();

  for (const ReaderMode mode : {ReaderMode::automatic, ReaderMode::stream}) {
    TraceFileReader reader(path, mode);
    EXPECT_EQ(reader.trace_count(), 180u);
    EXPECT_EQ(reader.chunk_count(), 3u);  // 64 + 64 + 52
    EXPECT_EQ(reader.chunk_rows(0), 64u);
    EXPECT_EQ(reader.chunk_rows(2), 52u);
    EXPECT_EQ(reader.channels(), two_channels);

    core::TraceBatch loaded(2);
    reader.read_rows(0, reader.trace_count(), loaded);
    expect_batches_identical(loaded, data);
  }
}

TEST(PstrStore, HeaderMetadataRoundTrips) {
  const std::string path = temp_path("metadata.pstr");
  util::Xoshiro256 rng(2);
  const Metadata metadata = {{"device", "MacBook Air M2"},
                             {"os", "macOS 13.0"},
                             {"victim", "user_space"},
                             {"empty", ""}};
  TraceFileWriter writer(
      path,
      {.channels = two_channels, .chunk_capacity = 16, .metadata = metadata});
  writer.append(random_batch(rng, 5, 2));
  writer.finalize();

  TraceFileReader reader(path);
  EXPECT_EQ(reader.metadata(), metadata);
  EXPECT_EQ(reader.chunk_capacity(), 16u);
}

TEST(PstrStore, EmptyStoreRoundTrips) {
  const std::string path = temp_path("empty.pstr");
  {
    TraceFileWriter writer(path, {.channels = two_channels});
    writer.finalize();
  }
  TraceFileReader reader(path);
  EXPECT_EQ(reader.trace_count(), 0u);
  EXPECT_EQ(reader.chunk_count(), 0u);
  core::TraceBatch batch(2);
  reader.read_rows(0, 0, batch);  // empty range is fine
  EXPECT_TRUE(batch.empty());
  EXPECT_THROW(reader.chunk_containing(0), std::out_of_range);
}

TEST(PstrStore, ArbitraryRowRangesSeekThroughTheIndex) {
  const std::string path = temp_path("seek.pstr");
  util::Xoshiro256 rng(3);
  const core::TraceBatch data = random_batch(rng, 333, 1);
  TraceFileWriter writer(path, {.channels = {util::FourCc("SYNT")},
                                .chunk_capacity = 32});
  writer.append(data);
  writer.finalize();

  TraceFileReader reader(path);
  // Ranges chosen to start/end mid-chunk and span several chunks.
  for (const auto& [begin, count] :
       {std::pair<std::size_t, std::size_t>{0, 1}, {31, 2}, {40, 100},
        {300, 33}, {0, 333}}) {
    core::TraceBatch expected(1);
    expected.append(data, begin, count);
    core::TraceBatch got(1);
    reader.read_rows(begin, count, got);
    expect_batches_identical(got, expected);
  }
  core::TraceBatch overflow(1);
  EXPECT_THROW(reader.read_rows(330, 10, overflow), std::out_of_range);
}

TEST(PstrStore, MappedReaderServesZeroCopyChunks) {
  const std::string path = temp_path("zerocopy.pstr");
  util::Xoshiro256 rng(4);
  const core::TraceBatch data = random_batch(rng, 96, 2);
  TraceFileWriter writer(path,
                         {.channels = two_channels, .chunk_capacity = 64});
  writer.append(data);
  writer.finalize();

  TraceFileReader reader(path, ReaderMode::mmap);
  ASSERT_TRUE(reader.mapped());
  const ChunkView view = reader.chunk(1);
  EXPECT_EQ(view.rows(), 32u);
  EXPECT_EQ(view.row_begin(), 64u);
  // Aligned mapped chunks never touch the scratch buffer.
  EXPECT_EQ(reader.resident_bytes(), 0u);
  for (std::size_t i = 0; i < view.rows(); ++i) {
    ASSERT_EQ(view.plaintexts()[i], data.plaintexts()[64 + i]);
    ASSERT_EQ(view.column(1)[i], data.column(1)[64 + i]);
  }
}

// The out-of-core guarantee: a stream-mode reader walking a file keeps
// only one chunk resident, so files larger than any configured batch
// pool replay without being loaded wholesale.
TEST(PstrStore, StreamReaderStaysOutOfCore) {
  const std::string path = temp_path("outofcore.pstr");
  util::Xoshiro256 rng(5);
  constexpr std::size_t chunk_rows = 128;
  constexpr std::size_t total_rows = 6400;
  {
    TraceFileWriter writer(
        path, {.channels = two_channels, .chunk_capacity = chunk_rows});
    core::TraceBatch batch(2);
    for (std::size_t produced = 0; produced < total_rows; produced += 400) {
      batch = random_batch(rng, 400, 2);
      writer.append(batch);
    }
    writer.finalize();
  }

  TraceFileReader reader(path, ReaderMode::stream);
  EXPECT_FALSE(reader.mapped());
  const std::size_t one_chunk = chunk_bytes(chunk_rows, 2);
  ASSERT_GT(reader.file_bytes(), 10 * one_chunk);

  core::TraceBatch batch(2);
  std::size_t seen = 0;
  while (seen < reader.trace_count()) {
    const std::size_t take = std::min<std::size_t>(100, total_rows - seen);
    batch.clear();
    reader.read_rows(seen, take, batch);
    ASSERT_EQ(batch.size(), take);
    // Never more than one chunk resident, however much has streamed by.
    ASSERT_LE(reader.resident_bytes(), one_chunk);
    seen += take;
  }
  EXPECT_EQ(seen, total_rows);
  EXPECT_LT(reader.resident_bytes(), reader.file_bytes() / 10);
}

TEST(PstrStore, StreamAndMmapReadsAreIdentical) {
  const std::string path = temp_path("modes.pstr");
  util::Xoshiro256 rng(6);
  const core::TraceBatch data = random_batch(rng, 250, 3);
  TraceFileWriter writer(
      path, {.channels = {util::FourCc("PHPC"), util::FourCc("PMVC"),
                          util::FourCc("PCPU")},
             .chunk_capacity = 77});
  writer.append(data);
  writer.finalize();

  TraceFileReader mapped(path, ReaderMode::automatic);
  TraceFileReader streamed(path, ReaderMode::stream);
  core::TraceBatch a(3);
  core::TraceBatch b(3);
  mapped.read_rows(13, 200, a);
  streamed.read_rows(13, 200, b);
  expect_batches_identical(a, b);
}

TEST(PstrStore, WriterRejectsMisuse) {
  EXPECT_THROW(TraceFileWriter("/tmp/x.pstr", {.channels = {}}), StoreError);
  EXPECT_THROW(
      TraceFileWriter("/tmp/x.pstr",
                      {.channels = two_channels, .chunk_capacity = 0}),
      StoreError);
  EXPECT_THROW(TraceFileWriter("/nonexistent-dir/x.pstr",
                               {.channels = two_channels}),
               StoreError);

  const std::string path = temp_path("misuse.pstr");
  TraceFileWriter writer(path, {.channels = two_channels});
  EXPECT_THROW(writer.append(core::TraceBatch(1)), StoreError);  // 1 != 2
  writer.finalize();
  writer.finalize();  // idempotent
  util::Xoshiro256 rng(7);
  EXPECT_THROW(writer.append(random_batch(rng, 1, 2)), StoreError);
}

}  // namespace
}  // namespace psc::store
