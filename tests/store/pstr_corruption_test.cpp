// Robustness: a TraceFileReader pointed at a damaged PSTR file must fail
// with a clear StoreError — never undefined behavior, never a silent
// short read. Each test writes a real file, corrupts it byte-wise, and
// checks both the failure and (where it matters) the message.
#include <gtest/gtest.h>

#include <cstddef>
#include <fstream>
#include <string>
#include <vector>

#include "store/trace_file_reader.h"
#include "store/trace_file_writer.h"
#include "util/crc32.h"
#include "util/rng.h"

namespace psc::store {
namespace {

constexpr std::size_t rows = 100;
constexpr std::size_t chunk_rows = 32;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

// A small but multi-chunk valid file: 100 rows over 4 chunks, 2 channels.
std::string write_valid_file(const std::string& name) {
  const std::string path = temp_path(name);
  util::Xoshiro256 rng(1);
  core::TraceBatch batch(2);
  batch.resize(rows);
  for (auto& pt : batch.plaintexts()) {
    rng.fill_bytes(pt);
  }
  for (auto& ct : batch.ciphertexts()) {
    rng.fill_bytes(ct);
  }
  for (std::size_t c = 0; c < 2; ++c) {
    for (auto& v : batch.column(c)) {
      v = rng.uniform(-1.0, 1.0);
    }
  }
  TraceFileWriter writer(
      path, {.channels = {util::FourCc("PHPC"), util::FourCc("PMVC")},
             .chunk_capacity = chunk_rows});
  writer.append(batch);
  writer.finalize();
  return path;
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), {}};
}

void dump(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Expects opening (or fully reading) `path` to throw a StoreError whose
// message contains `needle`.
void expect_open_fails(const std::string& path, const std::string& needle,
                       ReaderMode mode = ReaderMode::automatic) {
  try {
    TraceFileReader reader(path, mode);
    core::TraceBatch batch(reader.channels().size());
    reader.read_rows(0, reader.trace_count(), batch);
    FAIL() << "expected StoreError containing \"" << needle << "\"";
  } catch (const StoreError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(PstrCorruption, MissingFile) {
  expect_open_fails(temp_path("does_not_exist.pstr"), "cannot open");
}

TEST(PstrCorruption, FileShorterThanMagic) {
  const std::string path = write_valid_file("tiny.pstr");
  dump(path, {'P', 'S'});
  expect_open_fails(path, "truncated");
}

TEST(PstrCorruption, BadMagic) {
  const std::string path = write_valid_file("magic.pstr");
  auto bytes = slurp(path);
  bytes[0] = 'X';
  dump(path, bytes);
  expect_open_fails(path, "bad magic");
}

TEST(PstrCorruption, VersionMismatch) {
  const std::string path = write_valid_file("version.pstr");
  auto bytes = slurp(path);
  bytes[4] = 3;  // version field (little-endian u16 at offset 4)
  dump(path, bytes);
  expect_open_fails(path, "unsupported format version 3");
}

TEST(PstrCorruption, TruncatedTail) {
  const std::string path = write_valid_file("tail.pstr");
  auto bytes = slurp(path);
  // Any truncation destroys the fixed-size footer at EOF, so every
  // partial copy/crash mid-download is caught up front.
  for (const std::size_t keep :
       {bytes.size() - 1, bytes.size() - 100, bytes.size() / 2,
        std::size_t{64}}) {
    std::vector<char> cut(bytes.begin(),
                          bytes.begin() + static_cast<std::ptrdiff_t>(keep));
    dump(path, cut);
    expect_open_fails(path, "footer");
  }
}

TEST(PstrCorruption, ChunkPayloadBitFlip) {
  for (const ReaderMode mode : {ReaderMode::automatic, ReaderMode::stream}) {
    const std::string path = write_valid_file("payload.pstr");
    auto bytes = slurp(path);
    // Chunks are contiguous after the header; find chunk 1's header by
    // scanning for the second "CHNK", then flip one payload bit.
    std::size_t victim_offset = bytes.size();
    std::size_t seen = 0;
    for (std::size_t i = 0; i + 4 <= bytes.size(); ++i) {
      if (bytes[i] == 'C' && bytes[i + 1] == 'H' && bytes[i + 2] == 'N' &&
          bytes[i + 3] == 'K' && ++seen == 2) {
        victim_offset = i + chunk_header_bytes + 40;  // inside the payload
        break;
      }
    }
    ASSERT_LT(victim_offset, bytes.size());
    bytes[victim_offset] = static_cast<char>(bytes[victim_offset] ^ 0x10);
    dump(path, bytes);

    TraceFileReader reader(path, mode);
    core::TraceBatch batch(2);
    // Chunk 0 is intact and reads fine...
    reader.read_rows(0, chunk_rows, batch);
    EXPECT_EQ(batch.size(), chunk_rows);
    // ...but touching the flipped chunk is a loud CRC error, not a wrong
    // correlation.
    batch.clear();
    try {
      reader.read_rows(chunk_rows, chunk_rows, batch);
      FAIL() << "expected CRC mismatch";
    } catch (const StoreError& e) {
      EXPECT_NE(std::string(e.what()).find("CRC mismatch"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(PstrCorruption, ChunkIndexBitFlip) {
  const std::string path = write_valid_file("index.pstr");
  auto bytes = slurp(path);
  // The index entries end 8 bytes before the index CRC, which sits just
  // ahead of the 32-byte footer: flip a byte inside the last entry.
  bytes[bytes.size() - footer_bytes - 16] =
      static_cast<char>(bytes[bytes.size() - footer_bytes - 16] ^ 0x01);
  dump(path, bytes);
  expect_open_fails(path, "chunk index");
}

TEST(PstrCorruption, FooterBitFlip) {
  const std::string path = write_valid_file("footer.pstr");
  auto bytes = slurp(path);
  bytes[bytes.size() - 20] =
      static_cast<char>(bytes[bytes.size() - 20] ^ 0x80);  // trace_count
  dump(path, bytes);
  expect_open_fails(path, "footer");
}

// CRC32 is integrity, not authentication: a crafted file can carry
// self-consistent CRCs, so the structural bounds checks themselves must
// reject hostile values instead of wrapping. These tests re-sign the
// corruption with a valid CRC before reopening.

TEST(PstrCorruption, CraftedHugeChunkOffsetWithValidIndexCrc) {
  const std::string path = write_valid_file("crafted_offset.pstr");
  auto bytes = slurp(path);
  std::byte* data = reinterpret_cast<std::byte*>(bytes.data());
  const std::byte* footer = data + bytes.size() - footer_bytes;
  const std::uint64_t index_offset = get_u64(footer);
  const std::uint64_t chunks = get_u64(footer + 16);
  // Entry 0's offset would wrap any additive chunk-extent check and send
  // a mapped reader far outside the mapping.
  std::byte* entries = data + index_offset + 16;
  put_u64(entries, 0xfffffffffffff000ull);
  const std::size_t entries_size = chunks * index_entry_bytes;
  put_u32(entries + entries_size, util::crc32(entries, entries_size));
  dump(path, bytes);
  for (const ReaderMode mode : {ReaderMode::automatic, ReaderMode::stream}) {
    expect_open_fails(path, "chunk index", mode);
  }
}

TEST(PstrCorruption, CraftedHugeChunkCountWithValidFooterCrc) {
  const std::string path = write_valid_file("crafted_count.pstr");
  auto bytes = slurp(path);
  std::byte* footer =
      reinterpret_cast<std::byte*>(bytes.data()) + bytes.size() - footer_bytes;
  // chunk_count chosen so chunks * index_entry_bytes wraps to a small
  // value; must fail loudly, not std::bad_alloc out of reserve().
  put_u64(footer + 16, 0x4000000000000000ull);
  put_u32(footer + 24, util::crc32(footer, 24));
  dump(path, bytes);
  expect_open_fails(path, "corrupt footer");
}

TEST(PstrCorruption, HeaderChannelListOutOfBounds) {
  const std::string path = write_valid_file("channels.pstr");
  auto bytes = slurp(path);
  bytes[16] = static_cast<char>(0xff);  // channel_count low byte: 255
  dump(path, bytes);
  expect_open_fails(path, "corrupt header");
}

}  // namespace
}  // namespace psc::store
