#include "victim/platform.h"

#include <gtest/gtest.h>

namespace psc::victim {
namespace {

TEST(Platform, Construction) {
  Platform platform(soc::DeviceProfile::macbook_air_m2(), 10);
  EXPECT_EQ(platform.chip().p_core_count(), 4u);
  EXPECT_DOUBLE_EQ(platform.time_s(), 0.0);
}

TEST(Platform, RunForAdvancesEverything) {
  Platform platform(soc::DeviceProfile::macbook_air_m2(), 10);
  platform.run_for(1.5);
  EXPECT_NEAR(platform.time_s(), 1.5, 1e-9);
  // SMC latched at least once after t=1s.
  EXPECT_GE(platform.smc().last_latch_time(smc::FourCc("PHPC")), 1.0);
}

TEST(Platform, UserConnectionReadsPowerKeys) {
  Platform platform(soc::DeviceProfile::macbook_air_m2(), 10);
  platform.run_for(1.1);
  auto conn = platform.open_smc();
  EXPECT_EQ(conn.privilege(), smc::Privilege::user);
  smc::SmcValue value;
  EXPECT_EQ(conn.read_key(smc::FourCc("PHPC"), value), smc::SmcStatus::ok);
  EXPECT_GT(value.as_double(), 0.0);
}

TEST(Platform, LowpowermodeToggle) {
  Platform platform(soc::DeviceProfile::macbook_air_m2(), 10);
  platform.set_lowpowermode(true);
  EXPECT_TRUE(platform.chip().lowpowermode());
  platform.run_for(0.05);
  EXPECT_DOUBLE_EQ(platform.chip().p_core(0).frequency_hz(), 1.968e9);
}

}  // namespace
}  // namespace psc::victim
