#include "victim/fast_trace.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/stats.h"
#include "victim/victims.h"

namespace psc::victim {
namespace {

aes::Block random_block(util::Xoshiro256& rng) {
  aes::Block b;
  rng.fill_bytes(b);
  return b;
}

std::size_t key_index(const FastTraceSource& source, const char (&name)[5]) {
  const auto& keys = source.keys();
  const auto it = std::find(keys.begin(), keys.end(), smc::FourCc(name));
  EXPECT_NE(it, keys.end());
  return static_cast<std::size_t>(it - keys.begin());
}

class FastTraceTest : public ::testing::Test {
 protected:
  FastTraceTest() {
    util::Xoshiro256 rng(31);
    key_ = random_block(rng);
  }

  aes::Block key_;
  soc::DeviceProfile profile_ = soc::DeviceProfile::macbook_air_m2();
};

TEST_F(FastTraceTest, KeysMatchWorkloadDependentSet) {
  FastTraceSource source(profile_, key_, VictimModel::user_space(), 1);
  const auto db = smc::KeyDatabase::for_device(profile_.name);
  EXPECT_EQ(source.keys(), db.workload_dependent_keys());
}

TEST_F(FastTraceTest, CiphertextIsRealAes) {
  FastTraceSource source(profile_, key_, VictimModel::user_space(), 1);
  util::Xoshiro256 rng(32);
  const aes::Block pt = random_block(rng);
  const auto sample = source.collect(pt);
  EXPECT_EQ(sample.ciphertext, aes::Aes128(key_).encrypt(pt));
  EXPECT_EQ(sample.plaintext, pt);
  EXPECT_EQ(sample.smc_values.size(), source.keys().size());
}

TEST_F(FastTraceTest, DeterministicForSameSeed) {
  FastTraceSource a(profile_, key_, VictimModel::user_space(), 7);
  FastTraceSource b(profile_, key_, VictimModel::user_space(), 7);
  util::Xoshiro256 rng(33);
  for (int i = 0; i < 20; ++i) {
    const aes::Block pt = random_block(rng);
    const auto sa = a.collect(pt);
    const auto sb = b.collect(pt);
    EXPECT_EQ(sa.smc_values, sb.smc_values);
    EXPECT_EQ(sa.pcpu_mj, sb.pcpu_mj);
  }
}

TEST_F(FastTraceTest, EncryptionRateMatchesAnalytic) {
  FastTraceSource source(profile_, key_, VictimModel::user_space(), 1);
  // 3 threads at 3.504 GHz / 80 cycles per block.
  const double expected = 3.0 * 3.504e9 / 80.0;
  EXPECT_NEAR(source.encryptions_per_window(), expected, 0.01 * expected);
}

TEST_F(FastTraceTest, KernelModelIsSlower) {
  FastTraceSource user(profile_, key_, VictimModel::user_space(), 1);
  FastTraceSource kernel(profile_, key_, VictimModel::kernel_module(), 1);
  EXPECT_NEAR(kernel.encryptions_per_window(),
              0.85 * user.encryptions_per_window(),
              0.02 * user.encryptions_per_window());
}

TEST_F(FastTraceTest, PhpcCentredOnPClusterBaseline) {
  FastTraceSource source(profile_, key_, VictimModel::user_space(), 2);
  const std::size_t phpc = key_index(source, "PHPC");
  util::Xoshiro256 rng(34);
  util::RunningStats stats;
  for (int i = 0; i < 3000; ++i) {
    stats.add(source.collect(random_block(rng)).smc_values[phpc]);
  }
  // 3 AES P-cores at max frequency: each ~1.2 W.
  EXPECT_GT(stats.mean(), 2.0);
  EXPECT_LT(stats.mean(), 5.0);
  // Noise dominated by the PHPC sensor sigma (45 uW).
  EXPECT_NEAR(stats.stddev(), 45e-6, 12e-6);
}

TEST_F(FastTraceTest, PhpsShowsNoPlaintextDependence) {
  FastTraceSource source(profile_, key_, VictimModel::user_space(), 3);
  const std::size_t phps = key_index(source, "PHPS");
  aes::Block zeros{};
  aes::Block ones;
  ones.fill(0xff);
  util::RunningStats s0;
  util::RunningStats s1;
  for (int i = 0; i < 4000; ++i) {
    s0.add(source.collect(zeros).smc_values[phps]);
    s1.add(source.collect(ones).smc_values[phps]);
  }
  const auto t = util::welch_t_test(s0, s1);
  EXPECT_LT(std::abs(t.t), util::tvla_threshold);
}

TEST_F(FastTraceTest, PhpcDistinguishesPlaintextClasses) {
  FastTraceSource source(profile_, key_, VictimModel::user_space(), 4);
  const std::size_t phpc = key_index(source, "PHPC");
  aes::Block zeros{};
  aes::Block ones;
  ones.fill(0xff);
  util::RunningStats s0;
  util::RunningStats s1;
  for (int i = 0; i < 4000; ++i) {
    s0.add(source.collect(zeros).smc_values[phpc]);
    s1.add(source.collect(ones).smc_values[phpc]);
  }
  const auto t = util::welch_t_test(s0, s1);
  EXPECT_GT(std::abs(t.t), util::tvla_threshold);
}

TEST_F(FastTraceTest, PcpuIndependentOfPlaintext) {
  FastTraceSource source(profile_, key_, VictimModel::user_space(), 5);
  aes::Block zeros{};
  aes::Block ones;
  ones.fill(0xff);
  util::RunningStats s0;
  util::RunningStats s1;
  for (int i = 0; i < 3000; ++i) {
    s0.add(static_cast<double>(source.collect(zeros).pcpu_mj));
    s1.add(static_cast<double>(source.collect(ones).pcpu_mj));
  }
  const auto t = util::welch_t_test(s0, s1);
  EXPECT_LT(std::abs(t.t), util::tvla_threshold);
}

TEST_F(FastTraceTest, KernelModelNoisierOnPhpc) {
  FastTraceSource user(profile_, key_, VictimModel::user_space(), 6);
  FastTraceSource kernel(profile_, key_, VictimModel::kernel_module(), 6);
  const std::size_t phpc = key_index(user, "PHPC");
  util::Xoshiro256 rng(35);
  util::RunningStats su;
  util::RunningStats sk;
  aes::Block pt = random_block(rng);
  for (int i = 0; i < 4000; ++i) {
    su.add(user.collect(pt).smc_values[phpc]);
    sk.add(kernel.collect(pt).smc_values[phpc]);
  }
  // Kernel adds 18 uW syscall noise on top of the 45 uW sensor noise:
  // total sigma rises by ~8%.
  EXPECT_GT(sk.stddev(), 1.04 * su.stddev());
}

TEST_F(FastTraceTest, MatchesFullSimulationStatistics) {
  // The contract that justifies the fast path: for a fixed plaintext, the
  // slow (full chip + scheduler + SMC) pipeline and the fast analytic
  // pipeline agree on the PHPC mean to sub-noise precision and on the
  // noise scale.
  FastTraceSource fast(profile_, key_, VictimModel::user_space(), 8);
  const std::size_t phpc_idx = key_index(fast, "PHPC");
  util::Xoshiro256 rng(36);
  const aes::Block pt = random_block(rng);

  util::RunningStats fast_stats;
  for (int i = 0; i < 2000; ++i) {
    fast_stats.add(fast.collect(pt).smc_values[phpc_idx]);
  }

  Platform platform(profile_, 9);
  UserSpaceVictim victim(platform, key_, 3);
  auto conn = platform.open_smc();
  util::RunningStats slow_stats;
  for (int i = 0; i < 60; ++i) {
    victim.encrypt_window(pt, 1.0);
    slow_stats.add(conn.read_numeric(smc::FourCc("PHPC")));
  }

  // Means agree within a few noise standard errors.
  EXPECT_NEAR(slow_stats.mean(), fast_stats.mean(), 30e-6);
  // Noise scales agree within 40%.
  EXPECT_NEAR(slow_stats.stddev(), fast_stats.stddev(),
              0.4 * fast_stats.stddev());
}

}  // namespace
}  // namespace psc::victim
