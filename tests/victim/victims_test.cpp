#include "victim/victims.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace psc::victim {
namespace {

aes::Block random_block(util::Xoshiro256& rng) {
  aes::Block b;
  rng.fill_bytes(b);
  return b;
}

class VictimTest : public ::testing::Test {
 protected:
  VictimTest() : platform_(soc::DeviceProfile::macbook_air_m2(), 21) {
    util::Xoshiro256 rng(22);
    key_ = random_block(rng);
    pt_ = random_block(rng);
  }

  Platform platform_;
  aes::Block key_;
  aes::Block pt_;
};

TEST_F(VictimTest, UserVictimProducesCorrectCiphertext) {
  UserSpaceVictim victim(platform_, key_, 3);
  const aes::Block ct = victim.encrypt_window(pt_, 0.2);
  EXPECT_EQ(ct, aes::Aes128(key_).encrypt(pt_));
}

TEST_F(VictimTest, UserVictimThreadsLandOnPCores) {
  UserSpaceVictim victim(platform_, key_, 3);
  victim.encrypt_window(pt_, 0.05);
  for (const sched::ThreadId id : victim.thread_ids()) {
    const auto core = platform_.scheduler().thread(id).last_core();
    ASSERT_TRUE(core.has_value());
    EXPECT_LT(*core, platform_.chip().p_core_count());
  }
}

TEST_F(VictimTest, UserVictimThroughputScalesWithThreads) {
  UserSpaceVictim one(platform_, key_, 1);
  one.encrypt_window(pt_, 0.2);
  const std::uint64_t blocks_one = one.blocks_encrypted();

  Platform fresh(soc::DeviceProfile::macbook_air_m2(), 23);
  UserSpaceVictim three(fresh, key_, 3);
  three.encrypt_window(pt_, 0.2);
  EXPECT_NEAR(static_cast<double>(three.blocks_encrypted()),
              3.0 * static_cast<double>(blocks_one),
              0.05 * 3.0 * static_cast<double>(blocks_one));
}

TEST_F(VictimTest, KernelVictimProducesCorrectCiphertext) {
  KernelModuleVictim victim(platform_, key_);
  const aes::Block ct = victim.encrypt_window(pt_, 0.2);
  EXPECT_EQ(ct, aes::Aes128(key_).encrypt(pt_));
}

TEST_F(VictimTest, KernelVictimSlowerThanUserVictim) {
  // Duty-cycled workers encrypt fewer blocks per window.
  UserSpaceVictim user(platform_, key_, 3);
  user.encrypt_window(pt_, 0.2);
  const auto user_blocks = user.blocks_encrypted();

  Platform fresh(soc::DeviceProfile::macbook_air_m2(), 24);
  KernelModuleVictim kernel(fresh, key_, 3, 0.85);
  kernel.encrypt_window(pt_, 0.2);
  const auto kernel_blocks = kernel.blocks_encrypted();

  EXPECT_LT(static_cast<double>(kernel_blocks),
            0.9 * static_cast<double>(user_blocks));
  EXPECT_GT(static_cast<double>(kernel_blocks),
            0.7 * static_cast<double>(user_blocks));
}

TEST_F(VictimTest, SequentialWindowsChangePlaintext) {
  UserSpaceVictim victim(platform_, key_, 2);
  const aes::Block ct1 = victim.encrypt_window(pt_, 0.05);
  aes::Block other = pt_;
  other[0] ^= 0x01;
  const aes::Block ct2 = victim.encrypt_window(other, 0.05);
  EXPECT_NE(ct1, ct2);
  EXPECT_EQ(ct2, aes::Aes128(key_).encrypt(other));
}

}  // namespace
}  // namespace psc::victim
