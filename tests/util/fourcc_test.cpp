#include "util/fourcc.h"

#include <gtest/gtest.h>

#include <unordered_map>

namespace psc::util {
namespace {

TEST(FourCc, LiteralConstruction) {
  constexpr FourCc key("PHPC");
  EXPECT_EQ(key.str(), "PHPC");
  EXPECT_EQ(key.code(), 0x50485043u);
}

TEST(FourCc, CharacterAccess) {
  constexpr FourCc key("PDTR");
  EXPECT_EQ(key.at(0), 'P');
  EXPECT_EQ(key.at(1), 'D');
  EXPECT_EQ(key.at(2), 'T');
  EXPECT_EQ(key.at(3), 'R');
}

TEST(FourCc, ParseValid) {
  const auto key = FourCc::parse("PSTR");
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(*key, FourCc("PSTR"));
}

TEST(FourCc, ParseRejectsWrongLength) {
  EXPECT_FALSE(FourCc::parse("").has_value());
  EXPECT_FALSE(FourCc::parse("ABC").has_value());
  EXPECT_FALSE(FourCc::parse("ABCDE").has_value());
}

TEST(FourCc, RoundTripThroughCode) {
  const FourCc original("PMVC");
  const FourCc copy(original.code());
  EXPECT_EQ(copy, original);
  EXPECT_EQ(copy.str(), "PMVC");
}

TEST(FourCc, NonPrintableRenderedAsDot) {
  const FourCc weird(0x50000001u);
  EXPECT_EQ(weird.str(), "P..\x01"[0] == 'P' ? weird.str() : "");
  EXPECT_EQ(weird.str()[0], 'P');
  EXPECT_EQ(weird.str()[1], '.');
  EXPECT_EQ(weird.str()[2], '.');
  EXPECT_EQ(weird.str()[3], '.');
}

TEST(FourCc, Ordering) {
  EXPECT_LT(FourCc("AAAA"), FourCc("AAAB"));
  EXPECT_LT(FourCc("PHPC"), FourCc("PHPS"));
  EXPECT_EQ(FourCc("PHPC") <=> FourCc("PHPC"), std::strong_ordering::equal);
}

TEST(FourCc, DefaultIsZero) {
  constexpr FourCc empty;
  EXPECT_EQ(empty.code(), 0u);
}

TEST(FourCc, UsableAsHashKey) {
  std::unordered_map<FourCc, int> map;
  map[FourCc("PHPC")] = 1;
  map[FourCc("PDTR")] = 2;
  EXPECT_EQ(map.at(FourCc("PHPC")), 1);
  EXPECT_EQ(map.at(FourCc("PDTR")), 2);
  EXPECT_EQ(map.count(FourCc("XXXX")), 0u);
}

}  // namespace
}  // namespace psc::util
