#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace psc::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.population_variance(), 4.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Xoshiro256 rng(21);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.gaussian(10.0, 3.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, AddBatchEqualsLoopExactly) {
  Xoshiro256 rng(22);
  std::vector<double> xs(777);
  for (double& x : xs) {
    x = rng.gaussian(-3.0, 2.0);
  }
  RunningStats looped;
  for (const double x : xs) {
    looped.add(x);
  }
  RunningStats batched;
  batched.add_batch(xs);
  EXPECT_EQ(batched.count(), looped.count());
  EXPECT_DOUBLE_EQ(batched.mean(), looped.mean());
  EXPECT_DOUBLE_EQ(batched.variance(), looped.variance());
  EXPECT_DOUBLE_EQ(batched.min(), looped.min());
  EXPECT_DOUBLE_EQ(batched.max(), looped.max());
}

TEST(OnlineCorrelation, AddBatchEqualsLoopExactly) {
  Xoshiro256 rng(23);
  std::vector<double> xs(500);
  std::vector<double> ys(500);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.uniform01();
    ys[i] = 0.5 * xs[i] + rng.gaussian(0.0, 0.1);
  }
  OnlineCorrelation looped;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    looped.add(xs[i], ys[i]);
  }
  OnlineCorrelation batched;
  batched.add_batch(xs, ys);
  EXPECT_EQ(batched.count(), looped.count());
  EXPECT_DOUBLE_EQ(batched.correlation(), looped.correlation());
  EXPECT_DOUBLE_EQ(batched.covariance(), looped.covariance());
}

TEST(OnlineCorrelation, AddBatchRejectsLengthMismatch) {
  OnlineCorrelation acc;
  const std::vector<double> xs = {1.0, 2.0};
  const std::vector<double> ys = {1.0};
  EXPECT_THROW(acc.add_batch(xs, ys), std::invalid_argument);
  EXPECT_EQ(acc.count(), 0u);
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);

  RunningStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 1.5);
}

TEST(RunningStats, NumericallyStableAroundLargeOffset) {
  RunningStats s;
  const double offset = 1e9;
  for (const double x : {offset + 1.0, offset + 2.0, offset + 3.0}) {
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-6);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(WelchTTest, HandComputedExample) {
  // a = {1..5}: mean 3, var 2.5; b = {2,4,6,8,10}: mean 6, var 10.
  // t = (3-6)/sqrt(2.5/5 + 10/5) = -3/sqrt(2.5) = -1.8973665961.
  const std::vector<double> a = {1, 2, 3, 4, 5};
  const std::vector<double> b = {2, 4, 6, 8, 10};
  const WelchResult r = welch_t_test(a, b);
  EXPECT_NEAR(r.t, -1.8973665961, 1e-9);
  // Welch-Satterthwaite dof = 2.5^2 / (0.5^2/4 + 2^2/4) = 6.25/1.0625.
  EXPECT_NEAR(r.dof, 5.8823529412, 1e-9);
}

TEST(WelchTTest, SymmetricSign) {
  const std::vector<double> a = {1, 2, 3, 4, 5};
  const std::vector<double> b = {2, 4, 6, 8, 10};
  EXPECT_DOUBLE_EQ(welch_t_test(a, b).t, -welch_t_test(b, a).t);
}

TEST(WelchTTest, IdenticalSetsGiveZero) {
  const std::vector<double> a = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(welch_t_test(a, a).t, 0.0);
}

TEST(WelchTTest, DegenerateInputsGiveZero) {
  const std::vector<double> one = {1.0};
  const std::vector<double> many = {1, 2, 3};
  EXPECT_DOUBLE_EQ(welch_t_test(one, many).t, 0.0);
  const std::vector<double> constant = {5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(welch_t_test(constant, constant).t, 0.0);
}

TEST(WelchTTest, DetectsSeparatedDistributions) {
  Xoshiro256 rng(22);
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 5000; ++i) {
    a.add(rng.gaussian(0.0, 1.0));
    b.add(rng.gaussian(0.2, 1.0));
  }
  const WelchResult r = welch_t_test(a, b);
  EXPECT_LT(r.t, -tvla_threshold);
}

TEST(WelchTTest, NullHypothesisStaysBelowThreshold) {
  // Same distribution: |t| should almost always stay below 4.5.
  Xoshiro256 rng(23);
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 5000; ++i) {
    a.add(rng.gaussian(1.0, 2.0));
    b.add(rng.gaussian(1.0, 2.0));
  }
  EXPECT_LT(std::abs(welch_t_test(a, b).t), tvla_threshold);
}

TEST(Pearson, PerfectPositive) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegative) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Pearson, InvariantToAffineTransform) {
  Xoshiro256 rng(24);
  std::vector<double> x(500);
  std::vector<double> y(500);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.gaussian();
    y[i] = 0.3 * x[i] + rng.gaussian();
  }
  const double base = pearson(x, y);
  std::vector<double> y_scaled(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    y_scaled[i] = 100.0 + 42.0 * y[i];
  }
  EXPECT_NEAR(pearson(x, y_scaled), base, 1e-9);
}

TEST(Pearson, DegenerateReturnsZero) {
  const std::vector<double> x = {1, 1, 1, 1};
  const std::vector<double> y = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(pearson(empty, empty), 0.0);
}

TEST(OnlineCorrelation, MatchesBatchPearson) {
  Xoshiro256 rng(25);
  std::vector<double> x(2000);
  std::vector<double> y(2000);
  OnlineCorrelation acc;
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.gaussian(3.0, 2.0);
    y[i] = 0.5 * x[i] + rng.gaussian(0.0, 1.5);
    acc.add(x[i], y[i]);
  }
  EXPECT_NEAR(acc.correlation(), pearson(x, y), 1e-9);
}

TEST(OnlineCorrelation, MergeMatchesSequential) {
  Xoshiro256 rng(26);
  OnlineCorrelation whole;
  OnlineCorrelation left;
  OnlineCorrelation right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01();
    const double y = x * x + rng.gaussian(0.0, 0.1);
    whole.add(x, y);
    (i % 2 == 0 ? left : right).add(x, y);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.correlation(), whole.correlation(), 1e-12);
  EXPECT_NEAR(left.covariance(), whole.covariance(), 1e-12);
}

TEST(OnlineCorrelation, MeansTracked) {
  OnlineCorrelation acc;
  acc.add(1.0, 10.0);
  acc.add(3.0, 30.0);
  EXPECT_DOUBLE_EQ(acc.mean_x(), 2.0);
  EXPECT_DOUBLE_EQ(acc.mean_y(), 20.0);
}

TEST(SpanHelpers, MeanVariancePercentile) {
  const std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(variance(xs), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 2.5);
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(percentile(empty, 50), 0.0);
}

// Property: Welch t grows like sqrt(n) for a fixed mean separation.
class WelchGrowth : public ::testing::TestWithParam<int> {};

TEST_P(WelchGrowth, TScalesWithSampleCount) {
  const int n = GetParam();
  Xoshiro256 rng(27);
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < n; ++i) {
    a.add(rng.gaussian(0.0, 1.0));
    b.add(rng.gaussian(0.5, 1.0));
  }
  const double expected = 0.5 / std::sqrt(2.0 / n);
  EXPECT_NEAR(std::abs(welch_t_test(a, b).t), expected, 0.35 * expected);
}

INSTANTIATE_TEST_SUITE_P(SampleCounts, WelchGrowth,
                         ::testing::Values(200, 800, 3200, 12800));

}  // namespace
}  // namespace psc::util
