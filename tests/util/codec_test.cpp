#include "util/codec.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace psc::util {
namespace {

// A quantized sensor column: round(v / step) * step, the exact
// expression power::Quantizer::apply evaluates.
std::vector<double> quantized_walk(std::uint64_t seed, std::size_t n,
                                   double step, double base, double sigma,
                                   bool f32 = false) {
  util::Xoshiro256 rng(seed);
  std::vector<double> values(n);
  for (double& v : values) {
    const double raw = base + rng.gaussian(0.0, sigma);
    v = std::round(raw / step) * step;
    if (v == 0.0) {
      // Quantizing a small negative raw yields -0.0, which no k * step
      // reconstructs (see NegativeZeroFallsBackToIdentity); steer clear
      // of the zero cell while keeping the column mixed-sign.
      v = -step;
    }
    if (f32) {
      v = static_cast<double>(static_cast<float>(v));
    }
  }
  return values;
}

void expect_bit_exact_round_trip(const std::vector<double>& values) {
  std::vector<std::byte> enc;
  ASSERT_TRUE(delta_bitpack_encode(values.data(), values.size(), enc));
  EXPECT_LT(enc.size(), values.size() * sizeof(double));
  std::vector<double> out(values.size());
  ASSERT_TRUE(
      delta_bitpack_decode(enc.data(), enc.size(), out.data(), out.size()));
  for (std::size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(out[i]),
              std::bit_cast<std::uint64_t>(values[i]))
        << "value " << i;
  }
}

TEST(DeltaBitpack, RoundTripsQuantizedGrids) {
  // The steps the SMC key database actually uses: powermetrics-class
  // micro-watt grids, SMC milliwatt floats, and coarse integer sensors.
  for (const double step : {1e-6, 1e-3, 0.01, 1.0}) {
    expect_bit_exact_round_trip(
        quantized_walk(7, 3000, step, 4.2, 250 * step));
  }
}

TEST(DeltaBitpack, RoundTripsFloat32TruncatedGrids) {
  // What recorded captures really contain: quantized then pushed through
  // the client's float32 encoding (victim/fast_trace.cpp).
  for (const double step : {1e-6, 1e-3}) {
    expect_bit_exact_round_trip(
        quantized_walk(11, 3000, step, 3.2, 500 * step, /*f32=*/true));
  }
}

TEST(DeltaBitpack, RoundTripsNegativeAndMixedSignValues) {
  expect_bit_exact_round_trip(quantized_walk(13, 2000, 1e-3, 0.0, 0.05));
}

TEST(DeltaBitpack, RoundTripsConstantColumn) {
  std::vector<double> values(500, 3.25);
  expect_bit_exact_round_trip(values);
  std::vector<double> zeros(500, 0.0);
  expect_bit_exact_round_trip(zeros);
}

TEST(DeltaBitpack, SingleValueDoesNotPay) {
  // One value encodes to 24 header bytes > 8 raw bytes: must refuse.
  const double v = 1.5;
  std::vector<std::byte> enc;
  EXPECT_FALSE(delta_bitpack_encode(&v, 1, enc));
}

TEST(DeltaBitpack, RejectsUnquantizedGaussian) {
  util::Xoshiro256 rng(17);
  std::vector<double> values(1000);
  for (double& v : values) {
    v = rng.gaussian(0.0, 1.0);
  }
  std::vector<std::byte> enc;
  EXPECT_FALSE(delta_bitpack_encode(values.data(), values.size(), enc));
}

TEST(DeltaBitpack, RejectsNonFiniteAndEmpty) {
  std::vector<double> values(100, 1.0);
  values[50] = std::nan("");
  std::vector<std::byte> enc;
  EXPECT_FALSE(delta_bitpack_encode(values.data(), values.size(), enc));
  values[50] = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(delta_bitpack_encode(values.data(), values.size(), enc));
  EXPECT_FALSE(delta_bitpack_encode(values.data(), 0, enc));
}

TEST(DeltaBitpack, NegativeZeroFallsBackToIdentity) {
  // -0.0 is a value the quantizer can emit but k * step cannot
  // reproduce bit-exactly for any integer k, so the encoder must refuse
  // the column rather than decode it to +0.0.
  auto values = quantized_walk(31, 600, 1e-3, 0.5, 0.05);
  values[300] = -0.0;
  std::vector<std::byte> enc;
  EXPECT_FALSE(delta_bitpack_encode(values.data(), values.size(), enc));
}

TEST(DeltaBitpack, RejectsWideDeltas) {
  // Adjacent grid indices ~2^57 apart: width would exceed the 56-bit
  // kernel cap, so the encoder must bail rather than truncate.
  std::vector<double> values = {0.0, 1.0, 144115188075855872.0};
  std::vector<std::byte> enc;
  EXPECT_FALSE(delta_bitpack_encode(values.data(), values.size(), enc));
}

TEST(DeltaBitpack, DecodeRejectsStructuralCorruption) {
  const auto values = quantized_walk(19, 512, 1e-3, 2.0, 0.1);
  std::vector<std::byte> enc;
  ASSERT_TRUE(delta_bitpack_encode(values.data(), values.size(), enc));
  std::vector<double> out(values.size());

  // Truncated / extended blocks.
  EXPECT_FALSE(
      delta_bitpack_decode(enc.data(), enc.size() - 1, out.data(), out.size()));
  EXPECT_FALSE(delta_bitpack_decode(enc.data(), delta_bitpack_header_bytes - 1,
                                    out.data(), out.size()));
  auto grown = enc;
  grown.push_back(std::byte{0});
  EXPECT_FALSE(
      delta_bitpack_decode(grown.data(), grown.size(), out.data(), out.size()));

  // count != n.
  EXPECT_FALSE(
      delta_bitpack_decode(enc.data(), enc.size(), out.data(), out.size() - 1));

  // width out of range / unknown flag bits.
  auto bad = enc;
  bad[4] = std::byte{60};
  EXPECT_FALSE(
      delta_bitpack_decode(bad.data(), bad.size(), out.data(), out.size()));
  bad = enc;
  bad[6] = std::byte{0x04};  // set a reserved width-field bit
  EXPECT_FALSE(
      delta_bitpack_decode(bad.data(), bad.size(), out.data(), out.size()));
}

TEST(DeltaBitpack, PayloadBitFlipDecodesToDifferentValues) {
  // A flipped packed bit keeps the block structurally valid; it must
  // change the decoded stream (the store layer's CRC then catches it).
  const auto values = quantized_walk(23, 512, 1e-6, 4.0, 1e-3);
  std::vector<std::byte> enc;
  ASSERT_TRUE(delta_bitpack_encode(values.data(), values.size(), enc));
  ASSERT_GT(enc.size(), delta_bitpack_header_bytes);
  enc[delta_bitpack_header_bytes] ^= std::byte{0x01};
  std::vector<double> out(values.size());
  ASSERT_TRUE(
      delta_bitpack_decode(enc.data(), enc.size(), out.data(), out.size()));
  bool differs = false;
  for (std::size_t i = 0; i < values.size() && !differs; ++i) {
    differs = std::bit_cast<std::uint64_t>(out[i]) !=
              std::bit_cast<std::uint64_t>(values[i]);
  }
  EXPECT_TRUE(differs);
}

TEST(DeltaBitpack, EncodedSizeFormula) {
  EXPECT_EQ(delta_bitpack_encoded_bytes(1, 13), delta_bitpack_header_bytes);
  EXPECT_EQ(delta_bitpack_encoded_bytes(9, 8),
            delta_bitpack_header_bytes + 8);
  EXPECT_EQ(delta_bitpack_encoded_bytes(2, 1),
            delta_bitpack_header_bytes + 1);
}

TEST(DeltaBitpack, CompressesTypicalSensorColumnHard) {
  // ~250-step sigma needs ~10 bits per delta: expect at least 4x on a
  // 4096-row chunk column (the ratio the store_v2 bench then gates
  // end-to-end).
  const auto values =
      quantized_walk(29, 4096, 1e-6, 4.0, 250e-6, /*f32=*/true);
  std::vector<std::byte> enc;
  ASSERT_TRUE(delta_bitpack_encode(values.data(), values.size(), enc));
  EXPECT_LT(enc.size() * 4, values.size() * sizeof(double));
}

}  // namespace
}  // namespace psc::util
