#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace psc::util {
namespace {

TEST(Csv, SimpleRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"traces", "ge_bits"});
  csv.row({"1000", "97.2"});
  EXPECT_EQ(out.str(), "traces,ge_bits\n1000,97.2\n");
}

TEST(Csv, QuotesCommasAndQuotes) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"a,b", "say \"hi\"", "plain"});
  EXPECT_EQ(out.str(), "\"a,b\",\"say \"\"hi\"\"\",plain\n");
}

TEST(Csv, QuotesNewlines) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"line1\nline2"});
  EXPECT_EQ(out.str(), "\"line1\nline2\"\n");
}

TEST(Csv, RowBuilderMixedTypes) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.start_row().cell("PHPC").cell(std::size_t{350000}).cell(31.0).done();
  EXPECT_EQ(out.str(), "PHPC,350000,31\n");
}

TEST(Csv, FormatDouble) {
  EXPECT_EQ(format_double(3.5), "3.5");
  EXPECT_EQ(format_double(0.0), "0");
  EXPECT_EQ(format_double(-1.25), "-1.25");
  EXPECT_EQ(format_double(1e10), "1e+10");
}

TEST(Csv, FormatDoubleSpecialValues) {
  EXPECT_EQ(format_double(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_double(-std::numeric_limits<double>::infinity()), "-inf");
}

}  // namespace
}  // namespace psc::util
