#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace psc::util {
namespace {

TEST(Csv, SimpleRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"traces", "ge_bits"});
  csv.row({"1000", "97.2"});
  EXPECT_EQ(out.str(), "traces,ge_bits\n1000,97.2\n");
}

TEST(Csv, QuotesCommasAndQuotes) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"a,b", "say \"hi\"", "plain"});
  EXPECT_EQ(out.str(), "\"a,b\",\"say \"\"hi\"\"\",plain\n");
}

TEST(Csv, QuotesNewlines) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"line1\nline2"});
  EXPECT_EQ(out.str(), "\"line1\nline2\"\n");
}

TEST(Csv, RowBuilderMixedTypes) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.start_row().cell("PHPC").cell(std::size_t{350000}).cell(31.0).done();
  EXPECT_EQ(out.str(), "PHPC,350000,31\n");
}

TEST(Csv, FormatDouble) {
  EXPECT_EQ(format_double(3.5), "3.5");
  EXPECT_EQ(format_double(0.0), "0");
  EXPECT_EQ(format_double(-1.25), "-1.25");
  EXPECT_EQ(format_double(1e10), "1e+10");
}

TEST(Csv, FormatDoubleSpecialValues) {
  EXPECT_EQ(format_double(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_double(-std::numeric_limits<double>::infinity()), "-inf");
}

// ---------- CsvReader: the writer's inverse ----------

std::vector<std::vector<std::string>> read_all(const std::string& text) {
  std::istringstream in(text);
  CsvReader reader(in);
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> cells;
  while (reader.next_record(cells)) {
    records.push_back(cells);
  }
  return records;
}

TEST(CsvReader, SimpleRecords) {
  const auto records = read_all("traces,ge_bits\n1000,97.2\n");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], (std::vector<std::string>{"traces", "ge_bits"}));
  EXPECT_EQ(records[1], (std::vector<std::string>{"1000", "97.2"}));
}

TEST(CsvReader, QuotedCellsWithCommasAndQuotes) {
  const auto records = read_all("\"a,b\",\"say \"\"hi\"\"\",plain\n");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], (std::vector<std::string>{"a,b", "say \"hi\"",
                                                  "plain"}));
}

TEST(CsvReader, QuotedCellsWithEmbeddedNewlines) {
  const auto records = read_all("\"line1\nline2\",x\nnext,row\n");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], (std::vector<std::string>{"line1\nline2", "x"}));
  EXPECT_EQ(records[1], (std::vector<std::string>{"next", "row"}));
}

TEST(CsvReader, PreservesEmptyTrailingCells) {
  const auto records = read_all("a,,\n,b\n");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], (std::vector<std::string>{"a", "", ""}));
  EXPECT_EQ(records[1], (std::vector<std::string>{"", "b"}));
}

TEST(CsvReader, CrLfAndMissingFinalNewline) {
  const auto records = read_all("a,b\r\nc,d");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(records[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvReader, UnterminatedQuoteThrows) {
  std::istringstream in("\"never closed");
  CsvReader reader(in);
  std::vector<std::string> cells;
  EXPECT_THROW(reader.next_record(cells), std::runtime_error);
}

// Writer output parses back to the original cells for every quoting edge
// case: commas, quotes, newlines, empty trailing cells, CR.
TEST(CsvReader, RoundTripsWriterOutput) {
  const std::vector<std::vector<std::string>> rows = {
      {"plain", "a,b", "say \"hi\""},
      {"line1\nline2", "", ""},
      {"", "trailing,comma,", "with\r\ncrlf"},
      {"last", "row"},
  };
  std::ostringstream out;
  CsvWriter writer(out);
  for (const auto& row : rows) {
    writer.row(row);
  }
  EXPECT_EQ(read_all(out.str()), rows);
}

}  // namespace
}  // namespace psc::util
