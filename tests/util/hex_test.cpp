#include "util/hex.h"

#include <gtest/gtest.h>

#include <array>

#include "util/rng.h"

namespace psc::util {
namespace {

TEST(Hex, EncodeKnown) {
  const std::array<std::uint8_t, 4> bytes = {0x00, 0x7f, 0xab, 0xff};
  EXPECT_EQ(to_hex(bytes), "007fabff");
}

TEST(Hex, EncodeEmpty) {
  EXPECT_EQ(to_hex({}), "");
}

TEST(Hex, DecodeKnown) {
  const auto bytes = from_hex("2b7e1516");
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(*bytes, (std::vector<std::uint8_t>{0x2b, 0x7e, 0x15, 0x16}));
}

TEST(Hex, DecodeCaseInsensitive) {
  EXPECT_EQ(from_hex("AbCdEf"), from_hex("abcdef"));
}

TEST(Hex, DecodeRejectsOddLength) {
  EXPECT_FALSE(from_hex("abc").has_value());
}

TEST(Hex, DecodeRejectsNonHex) {
  EXPECT_FALSE(from_hex("zz").has_value());
  EXPECT_FALSE(from_hex("0g").has_value());
  EXPECT_FALSE(from_hex("  ").has_value());
}

TEST(Hex, ExactDecodeSizeChecked) {
  std::array<std::uint8_t, 2> out{};
  EXPECT_TRUE(from_hex_exact("beef", out));
  EXPECT_EQ(out[0], 0xbe);
  EXPECT_EQ(out[1], 0xef);
  EXPECT_FALSE(from_hex_exact("be", out));
  EXPECT_FALSE(from_hex_exact("beefbe", out));
  EXPECT_FALSE(from_hex_exact("zzzz", out));
}

TEST(Hex, RoundTripRandomBuffers) {
  Xoshiro256 rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> buf(rng.uniform_u64(64));
    rng.fill_bytes(buf);
    const auto decoded = from_hex(to_hex(buf));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, buf);
  }
}

}  // namespace
}  // namespace psc::util
