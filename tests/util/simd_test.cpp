#include "util/simd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/aligned.h"
#include "util/rng.h"

namespace psc::util::simd {
namespace {

std::vector<double> gaussian_values(std::uint64_t seed, std::size_t n) {
  util::Xoshiro256 rng(seed);
  std::vector<double> values(n);
  for (double& v : values) {
    v = rng.gaussian(0.5, 2.0);
  }
  return values;
}

MomentStripes scalar_reference(const std::vector<double>& values,
                               std::uint64_t g0) {
  MomentStripes m;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::size_t j = (g0 + i) % stripes;
    m.sum[j] += values[i];
    m.sumsq[j] += values[i] * values[i];
  }
  return m;
}

void expect_stripes_eq(const MomentStripes& a, const MomentStripes& b) {
  for (std::size_t j = 0; j < stripes; ++j) {
    ASSERT_EQ(a.sum[j], b.sum[j]) << "sum stripe " << j;
    ASSERT_EQ(a.sumsq[j], b.sumsq[j]) << "sumsq stripe " << j;
  }
}

// RAII: restore auto dispatch after a forced-backend test.
struct BackendGuard {
  ~BackendGuard() { reset_backend(); }
};

TEST(SimdBackend, ScalarAlwaysSupported) {
  EXPECT_TRUE(backend_compiled(Backend::scalar));
  EXPECT_TRUE(backend_supported(Backend::scalar));
  const auto supported = supported_backends();
  ASSERT_FALSE(supported.empty());
  EXPECT_EQ(supported.front(), Backend::scalar);
}

TEST(SimdBackend, SupportedImpliesCompiled) {
  for (const Backend backend : all_backends) {
    if (backend_supported(backend)) {
      EXPECT_TRUE(backend_compiled(backend)) << backend_name(backend);
    }
  }
}

TEST(SimdBackend, ActiveBackendIsSupported) {
  EXPECT_TRUE(backend_supported(active_backend()));
}

TEST(SimdBackend, NamesAreUnique) {
  for (const Backend a : all_backends) {
    for (const Backend b : all_backends) {
      if (a != b) {
        EXPECT_NE(backend_name(a), backend_name(b));
      }
    }
  }
}

TEST(SimdBackend, ForceOverrideTakesEffect) {
  BackendGuard guard;
  for (const Backend backend : supported_backends()) {
    force_backend(backend);
    EXPECT_EQ(active_backend(), backend);
  }
}

TEST(SimdBackend, ForceUnsupportedThrows) {
  for (const Backend backend : all_backends) {
    if (!backend_supported(backend)) {
      EXPECT_THROW(force_backend(backend), std::invalid_argument);
    }
  }
}

TEST(SimdMoments, ScalarMatchesReference) {
  BackendGuard guard;
  force_backend(Backend::scalar);
  for (const std::uint64_t g0 : {0u, 1u, 5u, 8u, 13u}) {
    const auto values = gaussian_values(7, 1001);
    MomentStripes m;
    accumulate_moments(values.data(), values.size(), g0, m);
    expect_stripes_eq(m, scalar_reference(values, g0));
  }
}

// The core bit-exactness contract: every supported backend produces
// stripe state identical to the scalar fallback, at every phase offset
// and for lengths exercising head/body/tail splits.
TEST(SimdMoments, AllBackendsBitIdenticalToScalar) {
  BackendGuard guard;
  for (const Backend backend : supported_backends()) {
    for (const std::size_t n : {0u, 1u, 7u, 8u, 9u, 64u, 777u, 4096u}) {
      for (const std::uint64_t g0 : {0u, 3u, 8u, 21u}) {
        const auto values = gaussian_values(n + g0 + 11, n);
        force_backend(Backend::scalar);
        MomentStripes expected;
        accumulate_moments(values.data(), n, g0, expected);
        force_backend(backend);
        MomentStripes got;
        accumulate_moments(values.data(), n, g0, got);
        expect_stripes_eq(got, expected);
      }
    }
  }
}

// Prefix consistency: feeding a stream in any chunking yields identical
// stripes, provided g0 tracks the global index. GeCheckpointSink and
// store replay depend on this.
TEST(SimdMoments, ChunkingInvariant) {
  BackendGuard guard;
  const auto values = gaussian_values(9, 2000);
  for (const Backend backend : supported_backends()) {
    force_backend(backend);
    MomentStripes whole;
    accumulate_moments(values.data(), values.size(), 0, whole);
    for (const std::size_t chunk : {1u, 3u, 8u, 100u, 1024u}) {
      MomentStripes pieced;
      std::uint64_t g = 0;
      while (g < values.size()) {
        const std::size_t len =
            std::min<std::size_t>(chunk, values.size() - g);
        accumulate_moments(values.data() + g, len, g, pieced);
        g += len;
      }
      expect_stripes_eq(pieced, whole);
    }
  }
}

TEST(SimdMoments, ReduceStripesFixedTree) {
  std::array<double, stripes> s{};
  for (std::size_t j = 0; j < stripes; ++j) {
    s[j] = 0.1 * static_cast<double>(j + 1);
  }
  const double expected =
      ((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]));
  EXPECT_EQ(reduce_stripes(s), expected);
}

// Merge places b's stripe j where those values would have landed had the
// streams been concatenated. The per-stripe sums match the single-stream
// state to rounding (one pre-reduced add versus sequential adds — same
// 1e-12 contract the engine merge tests pin), and merging is
// deterministic, which is what worker invariance actually needs.
TEST(SimdMoments, MergeMatchesConcatenation) {
  BackendGuard guard;
  force_backend(Backend::scalar);
  for (const std::size_t na : {1u, 8u, 13u, 500u}) {
    const auto a_vals = gaussian_values(21, na);
    const auto b_vals = gaussian_values(22, 301);
    MomentStripes a;
    accumulate_moments(a_vals.data(), a_vals.size(), 0, a);
    MomentStripes b;
    accumulate_moments(b_vals.data(), b_vals.size(), 0, b);
    merge_moments(a, na, b);

    std::vector<double> concat = a_vals;
    concat.insert(concat.end(), b_vals.begin(), b_vals.end());
    MomentStripes whole;
    accumulate_moments(concat.data(), concat.size(), 0, whole);
    for (std::size_t j = 0; j < stripes; ++j) {
      ASSERT_NEAR(a.sum[j], whole.sum[j], 1e-12 * (1.0 + std::abs(whole.sum[j])))
          << "na " << na << " sum stripe " << j;
      ASSERT_NEAR(a.sumsq[j], whole.sumsq[j],
                  1e-12 * (1.0 + whole.sumsq[j]))
          << "na " << na << " sumsq stripe " << j;
    }
  }
}

TEST(SimdMoments, MergeIntoEmptyIsCopy) {
  const auto values = gaussian_values(31, 123);
  MomentStripes b = scalar_reference(values, 0);
  MomentStripes a;
  merge_moments(a, 0, b);
  expect_stripes_eq(a, b);
}

std::vector<std::uint8_t> random_blocks(std::uint64_t seed, std::size_t n) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> blocks(n * 16);
  rng.fill_bytes(blocks);
  return blocks;
}

TEST(SimdHistogram, ScalarMatchesDirectBinning) {
  BackendGuard guard;
  force_backend(Backend::scalar);
  const std::size_t n = 700;
  const auto blocks = random_blocks(41, n);
  const auto values = gaussian_values(42, n);
  AlignedVector<std::uint32_t> count(16 * 256, 0);
  AlignedVector<double> sum(16 * 256, 0.0);
  accumulate_histogram16(blocks.data(), values.data(), n, count.data(),
                         sum.data());
  std::vector<std::uint32_t> ref_count(16 * 256, 0);
  std::vector<double> ref_sum(16 * 256, 0.0);
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t t = 0; t < n; ++t) {
      const std::size_t bin = i * 256 + blocks[t * 16 + i];
      ++ref_count[bin];
      ref_sum[bin] += values[t];
    }
  }
  for (std::size_t bin = 0; bin < 16 * 256; ++bin) {
    ASSERT_EQ(count[bin], ref_count[bin]) << "bin " << bin;
    ASSERT_EQ(sum[bin], ref_sum[bin]) << "bin " << bin;
  }
}

TEST(SimdHistogram, AllBackendsBitIdenticalToScalar) {
  BackendGuard guard;
  for (const std::size_t n : {0u, 1u, 15u, 16u, 1000u}) {
    const auto blocks = random_blocks(51 + n, n);
    const auto values = gaussian_values(52 + n, n);
    force_backend(Backend::scalar);
    AlignedVector<std::uint32_t> ref_count(16 * 256, 0);
    AlignedVector<double> ref_sum(16 * 256, 0.0);
    accumulate_histogram16(blocks.data(), values.data(), n,
                           ref_count.data(), ref_sum.data());
    for (const Backend backend : supported_backends()) {
      force_backend(backend);
      AlignedVector<std::uint32_t> count(16 * 256, 0);
      AlignedVector<double> sum(16 * 256, 0.0);
      accumulate_histogram16(blocks.data(), values.data(), n, count.data(),
                             sum.data());
      for (std::size_t bin = 0; bin < 16 * 256; ++bin) {
        ASSERT_EQ(count[bin], ref_count[bin])
            << backend_name(backend) << " bin " << bin;
        ASSERT_EQ(sum[bin], ref_sum[bin])
            << backend_name(backend) << " bin " << bin;
      }
    }
  }
}

TEST(AlignedVector, DataIsCacheLineAligned) {
  AlignedVector<double> v(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % cache_line_bytes,
            0u);
  AlignedVector<std::uint32_t> c(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c.data()) % cache_line_bytes,
            0u);
}

TEST(MomentStripesLayout, CacheLineAligned) {
  EXPECT_EQ(alignof(MomentStripes), 64u);
  MomentStripes m;
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(&m) % 64u, 0u);
}

// Bit-level reference packer for unpack_bits: width-bit fields appended
// little-endian starting at bit 0.
std::vector<std::byte> pack_fields(const std::vector<std::uint64_t>& fields,
                                   unsigned width) {
  std::vector<std::byte> packed((fields.size() * width + 7) / 8,
                                std::byte{0});
  std::size_t bit = 0;
  for (std::uint64_t f : fields) {
    for (unsigned b = 0; b < width; ++b, ++bit) {
      if ((f >> b) & 1) {
        packed[bit >> 3] |=
            static_cast<std::byte>(1u << (bit & 7));
      }
    }
  }
  return packed;
}

TEST(SimdUnpackBits, AllWidthsRoundTripOnEveryBackend) {
  BackendGuard guard;
  util::Xoshiro256 rng(0x5eed);
  for (unsigned width = 1; width <= unpack_bits_max_width; ++width) {
    const std::size_t n = 257;  // odd tail for the vector loop
    std::vector<std::uint64_t> fields(n);
    const std::uint64_t mask =
        width == 64 ? ~0ull : ((1ull << width) - 1);
    for (auto& f : fields) {
      f = rng() & mask;
    }
    const auto packed = pack_fields(fields, width);
    for (const Backend backend : supported_backends()) {
      force_backend(backend);
      std::vector<std::uint64_t> out(n, ~0ull);
      unpack_bits(packed.data(), packed.size(), 0, width, out.data(), n);
      ASSERT_EQ(out, fields)
          << backend_name(backend) << " width " << width;
    }
  }
}

TEST(SimdUnpackBits, NonZeroBitOffsets) {
  BackendGuard guard;
  util::Xoshiro256 rng(0xabc);
  const unsigned width = 13;
  const std::size_t total = 500;
  std::vector<std::uint64_t> fields(total);
  for (auto& f : fields) {
    f = rng() & ((1ull << width) - 1);
  }
  const auto packed = pack_fields(fields, width);
  for (const Backend backend : supported_backends()) {
    force_backend(backend);
    for (const std::size_t first : {std::size_t{1}, std::size_t{7},
                                    std::size_t{63}, std::size_t{255}}) {
      const std::size_t n = total - first;
      std::vector<std::uint64_t> out(n);
      unpack_bits(packed.data(), packed.size(),
                  static_cast<std::uint64_t>(first) * width, width,
                  out.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], fields[first + i])
            << backend_name(backend) << " first " << first << " i " << i;
      }
    }
  }
}

TEST(SimdUnpackBits, WidthZeroAndEmpty) {
  BackendGuard guard;
  for (const Backend backend : supported_backends()) {
    force_backend(backend);
    std::vector<std::uint64_t> out(5, 42);
    unpack_bits(nullptr, 0, 0, 0, out.data(), out.size());
    for (const std::uint64_t v : out) {
      EXPECT_EQ(v, 0u) << backend_name(backend);
    }
    unpack_bits(nullptr, 0, 0, 17, out.data(), 0);  // n == 0: no touch
  }
}

TEST(SimdUnpackBits, TightBufferEndIsSafe) {
  // The last field ends exactly at the final byte: every backend must
  // read it correctly without touching past the buffer.
  BackendGuard guard;
  const unsigned width = 56;
  const std::size_t n = 8;  // 56 bytes exactly
  std::vector<std::uint64_t> fields(n);
  for (std::size_t i = 0; i < n; ++i) {
    fields[i] = (0x0123456789abcdull + i * 0x1111111111ull) &
                ((1ull << width) - 1);
  }
  const auto packed = pack_fields(fields, width);
  ASSERT_EQ(packed.size(), n * width / 8);
  for (const Backend backend : supported_backends()) {
    force_backend(backend);
    std::vector<std::uint64_t> out(n);
    unpack_bits(packed.data(), packed.size(), 0, width, out.data(), n);
    EXPECT_EQ(out, fields) << backend_name(backend);
  }
}

}  // namespace
}  // namespace psc::util::simd
