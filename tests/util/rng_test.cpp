#include "util/rng.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

namespace psc::util {
namespace {

TEST(SplitMix64, MatchesReferenceVectors) {
  // Reference outputs for seed 0 from the canonical splitmix64.c.
  SplitMix64 sm(0);
  EXPECT_EQ(sm(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm(), 0x06c45d188009454fULL);
}

TEST(SplitMix64, SameSeedSameStream) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Xoshiro256, Deterministic) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) {
      ++equal;
    }
  }
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro256, Uniform01InRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Xoshiro256, Uniform01MeanNearHalf) {
  Xoshiro256 rng(4);
  double sum = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.uniform01();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, UniformRangeRespected) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.5, 7.5);
    ASSERT_GE(x, -2.5);
    ASSERT_LT(x, 7.5);
  }
}

TEST(Xoshiro256, UniformU64BoundRespected) {
  Xoshiro256 rng(6);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LT(rng.uniform_u64(17), 17u);
  }
}

TEST(Xoshiro256, UniformU64CoversAllResidues) {
  Xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    seen.insert(rng.uniform_u64(16));
  }
  EXPECT_EQ(seen.size(), 16u);
}

TEST(Xoshiro256, UniformU64RoughlyUniform) {
  Xoshiro256 rng(8);
  constexpr std::uint64_t buckets = 8;
  constexpr int n = 80000;
  std::array<int, buckets> counts{};
  for (int i = 0; i < n; ++i) {
    ++counts[rng.uniform_u64(buckets)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, n / buckets, 0.08 * n / buckets);
  }
}

TEST(Xoshiro256, GaussianMoments) {
  Xoshiro256 rng(9);
  constexpr int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gaussian();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Xoshiro256, GaussianScaled) {
  Xoshiro256 rng(10);
  constexpr int n = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gaussian(5.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Xoshiro256, FillBytesCoversValues) {
  Xoshiro256 rng(11);
  std::vector<std::uint8_t> buf(4096);
  rng.fill_bytes(buf);
  std::set<std::uint8_t> seen(buf.begin(), buf.end());
  EXPECT_GT(seen.size(), 200u);
}

TEST(Xoshiro256, FillBytesHandlesOddLengths) {
  for (const std::size_t len : {0u, 1u, 3u, 7u, 8u, 9u, 15u}) {
    Xoshiro256 a(12);
    Xoshiro256 b(12);
    std::vector<std::uint8_t> buf_a(len, 0);
    std::vector<std::uint8_t> buf_b(len, 0);
    a.fill_bytes(buf_a);
    b.fill_bytes(buf_b);
    EXPECT_EQ(buf_a, buf_b);
  }
}

TEST(Xoshiro256, ForkedStreamsDiffer) {
  Xoshiro256 parent(13);
  Xoshiro256 child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) {
      ++equal;
    }
  }
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro256, SplitIsDeterministic) {
  const Xoshiro256 parent(21);
  Xoshiro256 a = parent.split(3);
  Xoshiro256 b = parent.split(3);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Xoshiro256, SplitDoesNotAdvanceParent) {
  Xoshiro256 parent(22);
  Xoshiro256 untouched(22);
  (void)parent.split(0);
  (void)parent.split(17);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(parent(), untouched());
  }
}

TEST(Xoshiro256, SplitStreamsDifferById) {
  const Xoshiro256 parent(23);
  Xoshiro256 a = parent.split(0);
  Xoshiro256 b = parent.split(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) {
      ++equal;
    }
  }
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro256, SplitStreamDiffersFromParentStream) {
  Xoshiro256 parent(24);
  Xoshiro256 child = parent.split(0);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) {
      ++equal;
    }
  }
  EXPECT_LE(equal, 1);
}

// Statistical smoke test for the parallel runner's reproducibility
// primitive: adjacent split streams must be pairwise uncorrelated, and each
// must remain individually uniform.
TEST(Xoshiro256, SplitStreamsUncorrelated) {
  const Xoshiro256 parent(25);
  constexpr int n_streams = 8;
  constexpr int n = 20000;
  std::vector<std::vector<double>> streams;
  for (int s = 0; s < n_streams; ++s) {
    Xoshiro256 rng = parent.split(static_cast<std::uint64_t>(s));
    std::vector<double> xs(n);
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
      xs[static_cast<std::size_t>(i)] = rng.uniform01();
      sum += xs[static_cast<std::size_t>(i)];
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02) << "stream " << s;
    streams.push_back(std::move(xs));
  }
  // Pairwise Pearson correlation of uniform streams: for independent
  // streams the sample correlation is ~N(0, 1/n), so |r| < 5/sqrt(n).
  const double bound = 5.0 / std::sqrt(static_cast<double>(n));
  for (int a = 0; a < n_streams; ++a) {
    for (int b = a + 1; b < n_streams; ++b) {
      double sx = 0.0, sy = 0.0, sxx = 0.0, syy = 0.0, sxy = 0.0;
      for (int i = 0; i < n; ++i) {
        const double x = streams[static_cast<std::size_t>(a)]
                                [static_cast<std::size_t>(i)];
        const double y = streams[static_cast<std::size_t>(b)]
                                [static_cast<std::size_t>(i)];
        sx += x;
        sy += y;
        sxx += x * x;
        syy += y * y;
        sxy += x * y;
      }
      const double cov = n * sxy - sx * sy;
      const double var_x = n * sxx - sx * sx;
      const double var_y = n * syy - sy * sy;
      const double r = cov / std::sqrt(var_x * var_y);
      EXPECT_LT(std::abs(r), bound) << "streams " << a << " and " << b;
    }
  }
}

TEST(Xoshiro256, LongJumpChangesSequence) {
  Xoshiro256 a(14);
  Xoshiro256 b(14);
  b.long_jump();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) {
      ++equal;
    }
  }
  EXPECT_LE(equal, 1);
}

// Property sweep: moments hold across seeds.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformMeanAndVariance) {
  Xoshiro256 rng(GetParam());
  constexpr int n = 50000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform01();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.02);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1, 2, 3, 1234567, 0xdeadbeef,
                                           0xfffffffffffffffeULL));

}  // namespace
}  // namespace psc::util
