#include "util/crc32.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string_view>
#include <vector>

namespace psc::util {
namespace {

std::uint32_t crc_of(std::string_view s) {
  return crc32(s.data(), s.size());
}

TEST(Crc32, StandardCheckValue) {
  // The CRC-32/ISO-HDLC check value every implementation must reproduce.
  EXPECT_EQ(crc_of("123456789"), 0xcbf43926u);
}

TEST(Crc32, KnownVectors) {
  EXPECT_EQ(crc_of(""), 0x00000000u);
  EXPECT_EQ(crc_of("a"), 0xe8b7be43u);
  EXPECT_EQ(crc_of("abc"), 0x352441c2u);
}

TEST(Crc32, StreamingMatchesOneShot) {
  const std::string_view data = "the quick brown fox jumps over the lazy dog";
  Crc32 crc;
  for (std::size_t i = 0; i < data.size(); i += 7) {
    const std::size_t n = std::min<std::size_t>(7, data.size() - i);
    crc.update(data.data() + i, n);
  }
  EXPECT_EQ(crc.value(), crc_of(data));
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<std::byte> data(1024);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i * 131);
  }
  const std::uint32_t clean = crc32(data);
  data[517] ^= std::byte{0x08};
  EXPECT_NE(crc32(data), clean);
}

}  // namespace
}  // namespace psc::util
