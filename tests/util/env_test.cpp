#include "util/env.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace psc::util {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ::unsetenv("PSC_TEST_VAR");
  }

  void set(const char* value) {
    ::setenv("PSC_TEST_VAR", value, 1);
  }
};

TEST_F(EnvTest, FlagUnsetUsesFallback) {
  EXPECT_FALSE(env_flag("PSC_TEST_VAR", false));
  EXPECT_TRUE(env_flag("PSC_TEST_VAR", true));
}

TEST_F(EnvTest, FlagTruthyValues) {
  for (const char* v : {"1", "true", "TRUE", "yes", "on", "On"}) {
    set(v);
    EXPECT_TRUE(env_flag("PSC_TEST_VAR", false)) << v;
  }
}

TEST_F(EnvTest, FlagFalsyValues) {
  for (const char* v : {"0", "false", "no", "off", "garbage"}) {
    set(v);
    EXPECT_FALSE(env_flag("PSC_TEST_VAR", true)) << v;
  }
}

TEST_F(EnvTest, FlagEmptyUsesFallback) {
  set("");
  EXPECT_TRUE(env_flag("PSC_TEST_VAR", true));
}

TEST_F(EnvTest, SizeParsesDigits) {
  set("1000000");
  EXPECT_EQ(env_size("PSC_TEST_VAR", 5), 1000000u);
}

TEST_F(EnvTest, SizeRejectsGarbage) {
  set("12x");
  EXPECT_EQ(env_size("PSC_TEST_VAR", 5), 5u);
  set("abc");
  EXPECT_EQ(env_size("PSC_TEST_VAR", 5), 5u);
}

TEST_F(EnvTest, SizeUnsetUsesFallback) {
  EXPECT_EQ(env_size("PSC_TEST_VAR", 42), 42u);
}

TEST_F(EnvTest, DoubleParses) {
  set("2.5");
  EXPECT_DOUBLE_EQ(env_double("PSC_TEST_VAR", 1.0), 2.5);
}

TEST_F(EnvTest, DoubleRejectsGarbage) {
  set("2.5x");
  EXPECT_DOUBLE_EQ(env_double("PSC_TEST_VAR", 1.0), 1.0);
}

}  // namespace
}  // namespace psc::util
