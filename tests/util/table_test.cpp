#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace psc::util {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t;
  t.header({"SMC key", "t-score"});
  t.add_row({"PHPC", "20.94"});
  t.add_row({"PHPS", "-0.18"});
  std::ostringstream out;
  t.render(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("SMC key"), std::string::npos);
  EXPECT_NE(s.find("PHPC"), std::string::npos);
  EXPECT_NE(s.find("20.94"), std::string::npos);
  EXPECT_NE(s.find("-0.18"), std::string::npos);
}

TEST(TextTable, TitlePrinted) {
  TextTable t;
  t.set_title("Table 3: TVLA");
  t.header({"a"});
  t.add_row({"1"});
  std::ostringstream out;
  t.render(out);
  EXPECT_EQ(out.str().rfind("Table 3: TVLA", 0), 0u);
}

TEST(TextTable, PadsShortRows) {
  TextTable t;
  t.header({"a", "b", "c"});
  t.add_row({"1"});
  std::ostringstream out;
  t.render(out);
  // Every data line must contain the same number of separators.
  const std::string s = out.str();
  std::istringstream lines(s);
  std::string line;
  std::size_t expected = std::string::npos;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '-' || line.find('|') == std::string::npos) {
      continue;
    }
    const std::size_t pipes =
        static_cast<std::size_t>(std::count(line.begin(), line.end(), '|'));
    if (expected == std::string::npos) {
      expected = pipes;
    }
    EXPECT_EQ(pipes, expected);
  }
}

TEST(TextTable, EmptyTableRendersNothing) {
  TextTable t;
  std::ostringstream out;
  t.render(out);
  EXPECT_TRUE(out.str().empty());
}

TEST(TextTable, RowCount) {
  TextTable t;
  t.header({"x"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, AlignmentControl) {
  TextTable t;
  t.header({"name", "val"});
  t.set_align(1, Align::left);
  t.add_row({"k", "7"});
  std::ostringstream out;
  t.render(out);
  EXPECT_NE(out.str().find("| k"), std::string::npos);
}

TEST(Fixed, FormatsDecimals) {
  EXPECT_EQ(fixed(20.9412, 2), "20.94");
  EXPECT_EQ(fixed(-0.176, 2), "-0.18");
  EXPECT_EQ(fixed(31.0, 1), "31.0");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

}  // namespace
}  // namespace psc::util
