#include "ioreport/ioreport.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "soc/workload.h"
#include "util/stats.h"

namespace psc::ioreport {
namespace {

class IoReportTest : public ::testing::Test {
 protected:
  IoReportTest()
      : chip_(soc::DeviceProfile::macbook_air_m2(), 33),
        report_(chip_, 34) {}

  soc::Chip chip_;
  IoReport report_;
};

TEST_F(IoReportTest, EnergyModelChannelsPresent) {
  const auto channels = report_.channels();
  ASSERT_EQ(channels.size(), 2u);
  EXPECT_EQ(channels[0].group, "Energy Model");
  EXPECT_EQ(channels[0].name, "PCPU");
  EXPECT_EQ(channels[1].name, "ECPU");
}

TEST_F(IoReportTest, CountersAccumulate) {
  const Sample before = report_.sample();
  soc::FmulStressor fmul;
  chip_.p_core(0).assign(&fmul);
  chip_.run_for(1.0);
  const Sample after = report_.sample();
  EXPECT_GT(after.pcpu_energy_mj, before.pcpu_energy_mj);
  EXPECT_GE(after.time_s, before.time_s + 0.99);
}

TEST_F(IoReportTest, DeltaHelper) {
  Sample a;
  a.pcpu_energy_mj = 1000;
  Sample b;
  b.pcpu_energy_mj = 3500;
  EXPECT_EQ(IoReport::pcpu_delta_mj(a, b), 2500u);
  EXPECT_EQ(IoReport::pcpu_delta_mj(b, a), 0u);
}

TEST_F(IoReportTest, MillijouleResolutionIsCoarse) {
  // One busy P-core for a second: the PCPU counter moves by a plausible
  // mJ-scale amount (hundreds to thousands), far coarser than the uW-class
  // SMC rail meters.
  soc::FmulStressor fmul;
  chip_.p_core(0).assign(&fmul);
  const Sample before = report_.sample();
  chip_.run_for(1.0);
  const Sample after = report_.sample();
  const std::uint64_t delta = IoReport::pcpu_delta_mj(before, after);
  EXPECT_GT(delta, 200u);
  EXPECT_LT(delta, 10000u);
}

TEST_F(IoReportTest, EstimateCarriesNoDataDependence) {
  // Two AES workloads differing only in plaintext produce identical PCPU
  // expectations; only the modelled OS jitter differs.
  const auto profile = soc::DeviceProfile::macbook_air_m2();
  util::Xoshiro256 rng(5);
  aes::Block key;
  rng.fill_bytes(key);

  auto run_class = [&](std::uint8_t fill, std::uint64_t seed) {
    soc::Chip chip(profile, seed);
    IoReport rep(chip, seed + 1);
    soc::AesWorkload aes_work(key, profile.leakage,
                              profile.aes_cycles_per_block);
    aes::Block pt;
    pt.fill(fill);
    aes_work.set_plaintext(pt);
    chip.p_core(0).assign(&aes_work);
    util::RunningStats deltas;
    Sample prev = rep.sample();
    for (int i = 0; i < 40; ++i) {
      chip.run_for(1.0);
      const Sample cur = rep.sample();
      deltas.add(static_cast<double>(IoReport::pcpu_delta_mj(prev, cur)));
      prev = cur;
    }
    return deltas;
  };

  const util::RunningStats zeros = run_class(0x00, 100);
  const util::RunningStats ones = run_class(0xff, 100);
  // Identical seeds: the estimate paths coincide to within the jitter.
  EXPECT_NEAR(zeros.mean(), ones.mean(), 3.0);
}

}  // namespace
}  // namespace psc::ioreport
