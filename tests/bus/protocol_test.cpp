// Wire-protocol unit tests: every message round-trips exactly (doubles
// bit-for-bit — the daemon's bit-identity contract crosses the wire),
// every malformed payload is a loud ProtocolError, and the framing layer
// rejects each class of broken frame (bad magic, wrong version, corrupt
// CRC, oversized declared length, truncation) without UB.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "bus/framing.h"
#include "bus/protocol.h"
#include "store/pstr_format.h"
#include "util/crc32.h"

namespace psc::bus {
namespace {

TEST(Payload, ScalarsAndStringsRoundTrip) {
  PayloadWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::quiet_NaN());
  w.f64(std::numeric_limits<double>::denorm_min());
  w.str("hello bus");
  w.str("");
  const std::uint8_t blob[3] = {1, 2, 3};
  w.block(blob, sizeof(blob));

  PayloadReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefU);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  // Bit-pattern equality: -0.0 and NaN must survive exactly.
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.f64()),
            std::bit_cast<std::uint64_t>(-0.0));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.f64()),
            std::bit_cast<std::uint64_t>(
                std::numeric_limits<double>::quiet_NaN()));
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::denorm_min());
  EXPECT_EQ(r.str(), "hello bus");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.block(), std::vector<std::uint8_t>({1, 2, 3}));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_NO_THROW(r.expect_end());
}

TEST(Payload, UnderrunAndTrailingBytesThrow) {
  PayloadWriter w;
  w.u32(7);
  {
    PayloadReader r(w.bytes());
    r.u16();
    r.u16();
    EXPECT_THROW(r.u8(), ProtocolError);  // past the end
  }
  {
    PayloadReader r(w.bytes());
    EXPECT_THROW(r.u64(), ProtocolError);  // wider than the payload
  }
  {
    PayloadReader r(w.bytes());
    r.u16();
    EXPECT_THROW(r.expect_end(), ProtocolError);  // trailing bytes
  }
  // A declared string length larger than the remaining payload must not
  // be trusted.
  PayloadWriter lying;
  lying.u32(1000);
  PayloadReader r(lying.bytes());
  EXPECT_THROW(r.str(), ProtocolError);
}

template <typename Msg>
Msg reencode(const Msg& msg) {
  PayloadWriter w;
  msg.encode(w);
  PayloadReader r(w.bytes());
  Msg out = Msg::decode(r);
  EXPECT_EQ(r.remaining(), 0u);
  return out;
}

TEST(Messages, ErrorStatusProgressRoundTrip) {
  const ErrorMsg err = reencode(ErrorMsg{ErrorCode::quota_exceeded, "full"});
  EXPECT_EQ(err.code, ErrorCode::quota_exceeded);
  EXPECT_EQ(err.message, "full");

  JobStatusMsg status;
  status.id = 42;
  status.state = JobState::failed;
  status.consumed = 100;
  status.total = 400;
  status.error = "boom";
  const JobStatusMsg s2 = reencode(status);
  EXPECT_EQ(s2.id, 42u);
  EXPECT_EQ(s2.state, JobState::failed);
  EXPECT_EQ(s2.consumed, 100u);
  EXPECT_EQ(s2.total, 400u);
  EXPECT_EQ(s2.error, "boom");

  const ProgressMsg p = reencode(ProgressMsg{7, 10, 20, 3});
  EXPECT_EQ(p.id, 7u);
  EXPECT_EQ(p.consumed, 10u);
  EXPECT_EQ(p.total, 20u);
  EXPECT_EQ(p.running_shards, 3u);

  const JobIdMsg id = reencode(JobIdMsg{99});
  EXPECT_EQ(id.id, 99u);
}

TEST(Messages, StatusCarriesRunningShards) {
  JobStatusMsg status;
  status.id = 8;
  status.state = JobState::running;
  status.consumed = 512;
  status.total = 4096;
  status.running_shards = 4;
  const JobStatusMsg out = reencode(status);
  EXPECT_EQ(out.running_shards, 4u);
}

TEST(Messages, StatsRoundTrip) {
  StatsMsg msg;
  msg.cache_hits = 1000;
  msg.cache_misses = 42;
  msg.cache_evictions = 7;
  msg.cache_resident_bytes = 123456789;
  msg.cache_capacity_bytes = 268435456;
  msg.cache_entries = 32;
  msg.jobs_submitted = 17;
  msg.jobs_active = 2;
  msg.pool_threads = 8;
  msg.jobs = {{1, JobState::running, 16, 2, 2, 4},
              {5, JobState::queued, 0, 0, 0, 0}};

  const StatsMsg out = reencode(msg);
  EXPECT_EQ(out.cache_hits, 1000u);
  EXPECT_EQ(out.cache_misses, 42u);
  EXPECT_EQ(out.cache_evictions, 7u);
  EXPECT_EQ(out.cache_resident_bytes, 123456789u);
  EXPECT_EQ(out.cache_capacity_bytes, 268435456u);
  EXPECT_EQ(out.cache_entries, 32u);
  EXPECT_EQ(out.jobs_submitted, 17u);
  EXPECT_EQ(out.jobs_active, 2u);
  EXPECT_EQ(out.pool_threads, 8u);
  ASSERT_EQ(out.jobs.size(), 2u);
  EXPECT_EQ(out.jobs[0].id, 1u);
  EXPECT_EQ(out.jobs[0].state, JobState::running);
  EXPECT_EQ(out.jobs[0].shards, 16u);
  EXPECT_EQ(out.jobs[0].shard_cap, 2u);
  EXPECT_EQ(out.jobs[0].running_shards, 2u);
  EXPECT_EQ(out.jobs[0].peak_shards, 4u);
  EXPECT_EQ(out.jobs[1].id, 5u);
  EXPECT_EQ(out.jobs[1].state, JobState::queued);

  // A bad job state on the wire is rejected.
  PayloadWriter w;
  msg.encode(w);
  std::vector<std::byte> bytes(w.bytes().begin(), w.bytes().end());
  // The first row's state byte sits after 8 u64 counters + u32 + u32 +
  // the row's u64 id.
  const std::size_t state_at = 8 * 8 + 4 + 4 + 8;
  ASSERT_LT(state_at, bytes.size());
  bytes[state_at] = std::byte{99};
  PayloadReader r(bytes);
  EXPECT_THROW(StatsMsg::decode(r), ProtocolError);
}

TEST(Messages, SubmitCpaRoundTrip) {
  SubmitCpaMsg msg;
  msg.dataset = "bench";
  msg.spec.channel = 0x50485043;  // "PHPC"
  for (std::size_t i = 0; i < 16; ++i) {
    msg.spec.known_key[i] = static_cast<std::uint8_t>(i * 13);
  }
  msg.spec.models = {power::PowerModel::rd0_hw, power::PowerModel::rd10_hd};
  msg.spec.trace_count = 123456;
  msg.spec.shards = 4;

  const SubmitCpaMsg out = reencode(msg);
  EXPECT_EQ(out.dataset, "bench");
  EXPECT_EQ(out.spec.channel, msg.spec.channel);
  EXPECT_EQ(out.spec.known_key, msg.spec.known_key);
  EXPECT_EQ(out.spec.models, msg.spec.models);
  EXPECT_EQ(out.spec.trace_count, 123456u);
  EXPECT_EQ(out.spec.shards, 4u);

  const SubmitTvlaMsg tvla =
      reencode(SubmitTvlaMsg{"bench", TvlaJobSpec{5000, 2}});
  EXPECT_EQ(tvla.dataset, "bench");
  EXPECT_EQ(tvla.spec.traces_per_set, 5000u);
  EXPECT_EQ(tvla.spec.shards, 2u);
}

TEST(Messages, DatasetListRoundTrip) {
  DatasetListMsg msg;
  DatasetListMsg::Entry entry;
  entry.name = "sample";
  entry.summary.path = "/tmp/sample.pstr";
  entry.summary.format_version = 2;
  entry.summary.trace_count = 9999;
  entry.summary.file_bytes = 123456;
  entry.summary.chunk_count = 3;
  entry.summary.chunk_capacity = 4096;
  entry.summary.channels = {"PHPC", "PMVC"};
  entry.summary.metadata = {{"device", "M2"}, {"os", "13.0"}};
  entry.summary.columns = {{"plaintext", 0, 192000, 192000},
                           {"PHPC", 3, 96000, 14557}};
  msg.datasets.push_back(entry);

  const DatasetListMsg out = reencode(msg);
  ASSERT_EQ(out.datasets.size(), 1u);
  const auto& s = out.datasets[0].summary;
  EXPECT_EQ(out.datasets[0].name, "sample");
  EXPECT_EQ(s.path, "/tmp/sample.pstr");
  EXPECT_EQ(s.format_version, 2);
  EXPECT_EQ(s.trace_count, 9999u);
  EXPECT_EQ(s.file_bytes, 123456u);
  EXPECT_EQ(s.chunk_count, 3u);
  EXPECT_EQ(s.chunk_capacity, 4096u);
  EXPECT_EQ(s.channels, (std::vector<std::string>{"PHPC", "PMVC"}));
  EXPECT_EQ(s.metadata, entry.summary.metadata);
  ASSERT_EQ(s.columns.size(), 2u);
  EXPECT_EQ(s.columns[1].name, "PHPC");
  EXPECT_EQ(s.columns[1].chunks_coded, 3u);
  EXPECT_EQ(s.columns[1].raw_bytes, 96000u);
  EXPECT_EQ(s.columns[1].stored_bytes, 14557u);
}

TEST(Messages, CpaResultRoundTripsEveryDoubleBitExactly) {
  CpaResultMsg msg;
  msg.id = 11;
  msg.result.traces = 50000;
  core::ModelResult model;
  model.model = power::PowerModel::rd10_hw;
  for (std::size_t i = 0; i < 16; ++i) {
    model.true_ranks[i] = static_cast<int>(i * 7 + 1);
    model.scored_key[i] = static_cast<std::uint8_t>(0xa0 + i);
    model.best_round_key[i] = static_cast<std::uint8_t>(i);
    model.implied_master_key[i] = static_cast<std::uint8_t>(0x10 + i);
    for (std::size_t g = 0; g < 256; ++g) {
      // Denormals, negatives and irrational doubles: bit patterns that
      // sloppy float formatting would mangle.
      model.bytes[i].correlation[g] =
          (g % 2 ? -1.0 : 1.0) * std::sqrt(static_cast<double>(g + i)) *
          (g == 7 ? std::numeric_limits<double>::denorm_min() : 1e-3);
    }
  }
  model.ge_bits = 87.654321;
  model.mean_rank = 12.875;
  model.recovered_bytes = 3;
  model.near_recovered_bytes = 9;
  msg.result.models.push_back(model);

  const CpaResultMsg out = reencode(msg);
  EXPECT_EQ(out.id, 11u);
  EXPECT_EQ(out.result.traces, 50000u);
  ASSERT_EQ(out.result.models.size(), 1u);
  const core::ModelResult& m = out.result.models[0];
  EXPECT_EQ(m.model, power::PowerModel::rd10_hw);
  EXPECT_EQ(m.true_ranks, model.true_ranks);
  EXPECT_EQ(m.scored_key, model.scored_key);
  EXPECT_EQ(m.best_round_key, model.best_round_key);
  EXPECT_EQ(m.implied_master_key, model.implied_master_key);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(m.ge_bits),
            std::bit_cast<std::uint64_t>(model.ge_bits));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(m.mean_rank),
            std::bit_cast<std::uint64_t>(model.mean_rank));
  EXPECT_EQ(m.recovered_bytes, 3);
  EXPECT_EQ(m.near_recovered_bytes, 9);
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t g = 0; g < 256; ++g) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(m.bytes[i].correlation[g]),
                std::bit_cast<std::uint64_t>(model.bytes[i].correlation[g]))
          << "byte " << i << " guess " << g;
    }
  }
}

TEST(Messages, TvlaResultRoundTrip) {
  TvlaResultMsg msg;
  msg.id = 5;
  msg.result.traces_per_set = 2000;
  core::TvlaChannelResult channel;
  channel.channel = "PHPC";
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      channel.matrix.t[i][j] = -4.5 + static_cast<double>(i * 3 + j) * 1.125;
    }
  }
  msg.result.channels.push_back(channel);

  const TvlaResultMsg out = reencode(msg);
  EXPECT_EQ(out.id, 5u);
  EXPECT_EQ(out.result.traces_per_set, 2000u);
  ASSERT_EQ(out.result.channels.size(), 1u);
  EXPECT_EQ(out.result.channels[0].channel, "PHPC");
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(
          std::bit_cast<std::uint64_t>(out.result.channels[0].matrix.t[i][j]),
          std::bit_cast<std::uint64_t>(channel.matrix.t[i][j]));
    }
  }
}

TEST(Messages, MalformedPayloadsThrowNotCrash) {
  // Truncated SubmitCpaMsg: cut a valid encoding in half.
  SubmitCpaMsg msg;
  msg.dataset = "d";
  PayloadWriter w;
  msg.encode(w);
  std::vector<std::byte> half(w.bytes().begin(),
                              w.bytes().begin() +
                                  static_cast<std::ptrdiff_t>(
                                      w.bytes().size() / 2));
  PayloadReader r(half);
  EXPECT_THROW(SubmitCpaMsg::decode(r), ProtocolError);

  // A model count outside (0, all_power_models.size()] is rejected.
  PayloadWriter bad;
  bad.str("d");
  bad.u32(0x50485043);
  const std::uint8_t key[16] = {};
  bad.block(key, sizeof(key));
  bad.u32(250);  // absurd model count
  PayloadReader rb(bad.bytes());
  EXPECT_THROW(SubmitCpaMsg::decode(rb), ProtocolError);

  // An invalid JobState byte is rejected.
  PayloadWriter bs;
  bs.u64(1);
  bs.u8(77);  // no such state
  bs.u64(0);
  bs.u64(0);
  bs.str("");
  PayloadReader rs(bs.bytes());
  EXPECT_THROW(JobStatusMsg::decode(rs), ProtocolError);
}

// ---------- framing over a real socketpair ----------

class FramingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a_ = Socket(fds[0]);
    b_ = Socket(fds[1]);
  }

  // Writes raw bytes as-is to a_'s fd and closes it, so the reader on b_
  // sees exactly this byte stream then EOF.
  void write_raw_and_close(const std::vector<std::byte>& bytes) {
    ASSERT_EQ(::send(a_.fd(), bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
    a_.close();
  }

  static std::vector<std::byte> valid_frame(MsgType type,
                                            const std::vector<std::byte>& pay) {
    std::vector<std::byte> frame(frame_header_bytes + pay.size());
    std::memcpy(frame.data(), frame_magic, 4);
    store::put_u16(frame.data() + 4, protocol_version);
    store::put_u16(frame.data() + 6, static_cast<std::uint16_t>(type));
    store::put_u32(frame.data() + 8, static_cast<std::uint32_t>(pay.size()));
    store::put_u32(frame.data() + 12, util::crc32(pay.data(), pay.size()));
    std::memcpy(frame.data() + frame_header_bytes, pay.data(), pay.size());
    return frame;
  }

  Socket a_;
  Socket b_;
};

TEST_F(FramingTest, RoundTripAndCleanEof) {
  PayloadWriter w;
  w.str("ping me");
  send_frame(a_, MsgType::ping, w);
  a_.close();

  std::vector<std::byte> payload;
  const auto type = recv_frame(b_, payload);
  ASSERT_TRUE(type.has_value());
  EXPECT_EQ(*type, MsgType::ping);
  PayloadReader r(payload);
  EXPECT_EQ(r.str(), "ping me");

  // After the sender closed at a frame boundary: clean EOF, not an error.
  EXPECT_FALSE(recv_frame(b_, payload).has_value());
}

TEST_F(FramingTest, EmptyPayloadFrame) {
  send_frame(a_, MsgType::ok, std::span<const std::byte>{});
  std::vector<std::byte> payload;
  const auto type = recv_frame(b_, payload);
  ASSERT_TRUE(type.has_value());
  EXPECT_EQ(*type, MsgType::ok);
  EXPECT_TRUE(payload.empty());
}

TEST_F(FramingTest, BadMagicIsProtocolError) {
  std::vector<std::byte> pay = {std::byte{1}, std::byte{2}};
  auto frame = valid_frame(MsgType::ping, pay);
  frame[0] = std::byte{'X'};
  write_raw_and_close(frame);
  std::vector<std::byte> payload;
  EXPECT_THROW(recv_frame(b_, payload), ProtocolError);
}

TEST_F(FramingTest, WrongVersionIsProtocolError) {
  auto frame = valid_frame(MsgType::ping, {});
  store::put_u16(frame.data() + 4, protocol_version + 1);
  write_raw_and_close(frame);
  std::vector<std::byte> payload;
  EXPECT_THROW(recv_frame(b_, payload), ProtocolError);
}

TEST_F(FramingTest, CorruptCrcIsProtocolError) {
  std::vector<std::byte> pay = {std::byte{9}, std::byte{8}, std::byte{7}};
  auto frame = valid_frame(MsgType::ping, pay);
  frame[frame_header_bytes + 1] ^= std::byte{0x40};  // flip a payload bit
  write_raw_and_close(frame);
  std::vector<std::byte> payload;
  EXPECT_THROW(recv_frame(b_, payload), ProtocolError);
}

TEST_F(FramingTest, OversizedDeclaredLengthIsRejectedBeforeAllocation) {
  auto frame = valid_frame(MsgType::ping, {});
  // Header claims 1 GiB of payload; recv must refuse without trying to
  // read (or allocate) it.
  store::put_u32(frame.data() + 8, 1u << 30);
  write_raw_and_close(frame);
  std::vector<std::byte> payload;
  EXPECT_THROW(recv_frame(b_, payload), ProtocolError);
}

TEST_F(FramingTest, TruncatedHeaderIsProtocolError) {
  auto frame = valid_frame(MsgType::ping, {});
  frame.resize(7);  // EOF mid-header
  write_raw_and_close(frame);
  std::vector<std::byte> payload;
  EXPECT_THROW(recv_frame(b_, payload), ProtocolError);
}

TEST_F(FramingTest, TruncatedPayloadIsProtocolError) {
  std::vector<std::byte> pay(64, std::byte{0x55});
  auto frame = valid_frame(MsgType::ping, pay);
  frame.resize(frame.size() - 10);  // EOF mid-payload
  write_raw_and_close(frame);
  std::vector<std::byte> payload;
  EXPECT_THROW(recv_frame(b_, payload), ProtocolError);
}

TEST_F(FramingTest, LargeFrameStreamsThroughSocketBuffers) {
  // Bigger than any socket buffer: exercises the partial send/recv loops.
  std::vector<std::byte> pay(512 * 1024);
  for (std::size_t i = 0; i < pay.size(); ++i) {
    pay[i] = static_cast<std::byte>(i * 31);
  }
  std::thread sender([&] { send_frame(a_, MsgType::cpa_result, pay); });
  std::vector<std::byte> payload;
  const auto type = recv_frame(b_, payload);
  sender.join();
  ASSERT_TRUE(type.has_value());
  EXPECT_EQ(*type, MsgType::cpa_result);
  EXPECT_EQ(payload, pay);
}

}  // namespace
}  // namespace psc::bus
