// JobTable: quota charge/release accounting (the slot must release
// exactly once per job, no matter who disconnects when), watcher
// wake-ups, and the wait_idle drain barrier — including a multithreaded
// hammer that TSan checks for races.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "bus/job_table.h"

namespace psc::bus {
namespace {

using namespace std::chrono_literals;

std::uint64_t submit(JobTable& table, std::uint64_t session) {
  return table.submit(session, JobKind::cpa, "ds", CpaJobSpec{},
                      TvlaJobSpec{});
}

TEST(JobTable, QuotaChargedPerSessionAndReleasedOnTerminal) {
  JobTable table(2);
  const std::uint64_t a1 = submit(table, 1);
  const std::uint64_t a2 = submit(table, 1);
  EXPECT_NE(a1, 0u);
  EXPECT_NE(a2, 0u);
  EXPECT_NE(a1, a2);
  // Session 1 is full; session 2 is untouched.
  EXPECT_EQ(submit(table, 1), 0u);
  EXPECT_NE(submit(table, 2), 0u);
  EXPECT_EQ(table.in_flight(1), 2u);
  EXPECT_EQ(table.in_flight(2), 1u);

  // done releases; failed releases.
  table.mark_done(a1, std::make_unique<CpaJobResult>(), nullptr);
  EXPECT_EQ(table.in_flight(1), 1u);
  EXPECT_NE(submit(table, 1), 0u);
  table.mark_failed(a2, "boom");
  EXPECT_EQ(table.in_flight(1), 1u);
}

TEST(JobTable, TerminalTransitionReleasesExactlyOnce) {
  JobTable table(1);
  const std::uint64_t id = submit(table, 7);
  ASSERT_NE(id, 0u);
  table.mark_done(id, std::make_unique<CpaJobResult>(), nullptr);
  // Every further transition on a terminal job is a no-op: no double
  // release, no state change, no error overwrite.
  table.mark_failed(id, "late failure");
  table.mark_done(id, std::make_unique<CpaJobResult>(), nullptr);
  EXPECT_EQ(table.in_flight(7), 0u);
  const auto status = table.status(id);
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->state, JobState::done);
  EXPECT_TRUE(status->error.empty());

  // The freed slot is usable exactly once (quota 1).
  EXPECT_NE(submit(table, 7), 0u);
  EXPECT_EQ(submit(table, 7), 0u);
}

TEST(JobTable, StatusTracksProgressAndResultsStayFetchable) {
  JobTable table(4);
  const std::uint64_t id = submit(table, 1);
  table.mark_running(id);
  table.update_progress(id, 100, 400);
  auto status = table.status(id);
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->state, JobState::running);
  EXPECT_EQ(status->consumed, 100u);
  EXPECT_EQ(status->total, 400u);

  auto result = std::make_unique<CpaJobResult>();
  result->traces = 400;
  table.mark_done(id, std::move(result), nullptr);
  status = table.status(id);
  EXPECT_EQ(status->state, JobState::done);
  EXPECT_EQ(status->consumed, status->total);  // done implies fully consumed

  const std::shared_ptr<Job> job = table.find(id);
  ASSERT_NE(job, nullptr);
  ASSERT_NE(job->cpa_result, nullptr);
  EXPECT_EQ(job->cpa_result->traces, 400u);
  EXPECT_EQ(table.status(999), nullptr);
  EXPECT_EQ(table.find(999), nullptr);
}

TEST(JobTable, WaitChangeWakesOnProgressFromAnotherThread) {
  JobTable table(4);
  const std::uint64_t id = submit(table, 1);
  std::thread worker([&] {
    std::this_thread::sleep_for(20ms);
    table.update_progress(id, 50, 100);
  });
  // Generous timeout: the wake must come from the update, not expiry.
  const auto status = table.wait_change(id, JobState::queued, 0, 5s);
  worker.join();
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->consumed, 50u);

  // Unknown ids are reported as such, not waited on.
  EXPECT_EQ(table.wait_change(999, JobState::queued, 0, 1ms), nullptr);
}

TEST(JobTable, WaitIdleBlocksUntilAllJobsTerminal) {
  JobTable table(8);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(submit(table, 1));
  }
  std::atomic<bool> drained{false};
  std::thread drainer([&] {
    table.wait_idle();
    drained.store(true);
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(drained.load());  // jobs still queued
  table.mark_done(ids[0], std::make_unique<CpaJobResult>(), nullptr);
  table.mark_failed(ids[1], "x");
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(drained.load());  // one job left
  table.mark_done(ids[2], std::make_unique<CpaJobResult>(), nullptr);
  drainer.join();
  EXPECT_TRUE(drained.load());
}

// TSan target: many threads submit, progress, finish and watch at once.
TEST(JobTable, ConcurrentSubmittersAndFinishersStayConsistent) {
  constexpr std::size_t sessions = 4;
  constexpr std::size_t jobs_per_session = 25;
  JobTable table(2);  // tight quota: submits contend with releases
  std::atomic<std::size_t> completed{0};

  std::vector<std::thread> threads;
  for (std::size_t s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      std::size_t done = 0;
      while (done < jobs_per_session) {
        const std::uint64_t id = submit(table, s);
        if (id == 0) {
          std::this_thread::yield();  // quota full: wait for a release
          continue;
        }
        table.mark_running(id);
        table.update_progress(id, 1, 2);
        if (done % 2 == 0) {
          table.mark_done(id, std::make_unique<CpaJobResult>(), nullptr);
        } else {
          table.mark_failed(id, "induced");
        }
        ++done;
        completed.fetch_add(1);
      }
    });
  }
  std::thread watcher([&] {
    while (completed.load() < sessions * jobs_per_session) {
      table.job_count();
      table.in_flight(0);
      table.wait_change(1, JobState::queued, 0, 1ms);
    }
  });
  for (auto& t : threads) {
    t.join();
  }
  watcher.join();

  table.wait_idle();  // everything terminal -> returns immediately
  EXPECT_EQ(table.job_count(), sessions * jobs_per_session);
  for (std::size_t s = 0; s < sessions; ++s) {
    EXPECT_EQ(table.in_flight(s), 0u) << "leaked quota slot, session " << s;
  }
}

}  // namespace
}  // namespace psc::bus
