// BusDaemon end-to-end over real Unix-domain sockets: served campaign
// results must be bit-identical to the same campaign run in-process
// (asserted on every correlation double, with two concurrent clients),
// protocol garbage must cost exactly the offending connection, a client
// disconnecting mid-job must leak nothing, and shutdown — via the
// protocol or a signal — must drain before it tears down.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cmath>
#include <csignal>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bus/client.h"
#include "bus/daemon.h"
#include "bus/jobs.h"
#include "store/pstr_format.h"
#include "store/trace_file_reader.h"
#include "store/trace_file_writer.h"
#include "util/rng.h"

namespace psc::bus {
namespace {

constexpr std::size_t rows = 1920;  // divisible by 6 for TVLA sets
constexpr std::size_t chunk_rows = 256;
constexpr std::size_t n_channels = 2;

// Short unique socket paths: sockaddr_un caps at ~107 bytes, so steer
// clear of deep gtest temp dirs.
std::string socket_path(const std::string& tag) {
  return "/tmp/psc_bus_" + std::to_string(::getpid()) + "_" + tag + ".sock";
}

aes::Block test_key() {
  aes::Block key;
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i * 17 + 3);
  }
  return key;
}

// A small v2 dataset with quantized channels (so delta_bitpack engages).
std::string write_dataset(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  util::Xoshiro256 rng(99);
  core::TraceBatch batch(n_channels);
  batch.resize(rows);
  for (auto& pt : batch.plaintexts()) {
    rng.fill_bytes(pt);
  }
  for (auto& ct : batch.ciphertexts()) {
    rng.fill_bytes(ct);
  }
  for (std::size_t c = 0; c < n_channels; ++c) {
    double level = 2.0;
    for (auto& v : batch.column(c)) {
      level += rng.gaussian(0.0, 1e-4);
      v = static_cast<double>(
          static_cast<float>(std::round(level * 1e6) / 1e6));
    }
  }
  store::TraceFileWriter writer(
      path, {.channels = {util::FourCc("PHPC"), util::FourCc("PMVC")},
             .chunk_capacity = chunk_rows,
             .channel_codecs = store::uniform_channel_codecs(
                 n_channels, store::ColumnCodec::delta_bitpack)});
  writer.append(batch);
  writer.finalize();
  return path;
}

void expect_cpa_bit_identical(const CpaJobResult& a, const CpaJobResult& b) {
  ASSERT_EQ(a.traces, b.traces);
  ASSERT_EQ(a.models.size(), b.models.size());
  for (std::size_t m = 0; m < a.models.size(); ++m) {
    const core::ModelResult& x = a.models[m];
    const core::ModelResult& y = b.models[m];
    EXPECT_EQ(x.model, y.model);
    EXPECT_EQ(x.true_ranks, y.true_ranks);
    EXPECT_EQ(x.scored_key, y.scored_key);
    EXPECT_EQ(x.best_round_key, y.best_round_key);
    EXPECT_EQ(x.implied_master_key, y.implied_master_key);
    EXPECT_EQ(x.recovered_bytes, y.recovered_bytes);
    EXPECT_EQ(x.near_recovered_bytes, y.near_recovered_bytes);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(x.ge_bits),
              std::bit_cast<std::uint64_t>(y.ge_bits));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(x.mean_rank),
              std::bit_cast<std::uint64_t>(y.mean_rank));
    for (std::size_t i = 0; i < 16; ++i) {
      for (std::size_t g = 0; g < 256; ++g) {
        ASSERT_EQ(std::bit_cast<std::uint64_t>(x.bytes[i].correlation[g]),
                  std::bit_cast<std::uint64_t>(y.bytes[i].correlation[g]))
            << "model " << m << " byte " << i << " guess " << g;
      }
    }
  }
}

void expect_tvla_bit_identical(const TvlaJobResult& a, const TvlaJobResult& b) {
  ASSERT_EQ(a.traces_per_set, b.traces_per_set);
  ASSERT_EQ(a.channels.size(), b.channels.size());
  for (std::size_t c = 0; c < a.channels.size(); ++c) {
    EXPECT_EQ(a.channels[c].channel, b.channels[c].channel);
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < 3; ++j) {
        ASSERT_EQ(std::bit_cast<std::uint64_t>(a.channels[c].matrix.t[i][j]),
                  std::bit_cast<std::uint64_t>(b.channels[c].matrix.t[i][j]))
            << "channel " << c << " cell " << i << "," << j;
      }
    }
  }
}

class BusDaemonTest : public ::testing::Test {
 protected:
  void serve(const std::string& tag, std::size_t quota = 4,
             std::size_t shard_parallelism = 0,
             std::size_t chunk_cache_mb = 256) {
    dataset_path_ = write_dataset("bus_" + tag + ".pstr");
    BusDaemonConfig config;
    config.socket_path = socket_path(tag);
    config.per_session_quota = quota;
    config.pool_reserve = 4;
    config.shard_parallelism = shard_parallelism;
    config.chunk_cache_mb = chunk_cache_mb;
    config.datasets = {{"bench", dataset_path_}};
    daemon_ = std::make_unique<BusDaemon>(std::move(config));
    daemon_->start();
  }

  void TearDown() override {
    if (daemon_ != nullptr) {
      daemon_->stop();
    }
  }

  std::string dataset_path_;
  std::unique_ptr<BusDaemon> daemon_;
};

TEST_F(BusDaemonTest, PingAndDatasetListMatchLocalSummary) {
  serve("list");
  BusClient client(daemon_->socket_path());
  client.ping();

  const auto datasets = client.list_datasets();
  ASSERT_EQ(datasets.size(), 1u);
  EXPECT_EQ(datasets[0].name, "bench");

  store::TraceFileReader reader(dataset_path_);
  const store::DatasetSummary local = store::summarize_dataset(reader);
  const store::DatasetSummary& served = datasets[0].summary;
  EXPECT_EQ(served.path, local.path);
  EXPECT_EQ(served.format_version, local.format_version);
  EXPECT_EQ(served.trace_count, local.trace_count);
  EXPECT_EQ(served.file_bytes, local.file_bytes);
  EXPECT_EQ(served.chunk_count, local.chunk_count);
  EXPECT_EQ(served.channels, local.channels);
  EXPECT_EQ(served.metadata, local.metadata);
  ASSERT_EQ(served.columns.size(), local.columns.size());
  for (std::size_t c = 0; c < served.columns.size(); ++c) {
    EXPECT_EQ(served.columns[c].name, local.columns[c].name);
    EXPECT_EQ(served.columns[c].chunks_coded, local.columns[c].chunks_coded);
    EXPECT_EQ(served.columns[c].raw_bytes, local.columns[c].raw_bytes);
    EXPECT_EQ(served.columns[c].stored_bytes, local.columns[c].stored_bytes);
  }
}

// The acceptance test: two clients submit concurrently (CPA and TVLA,
// multi-shard) against the one shared mapping; both served results must
// equal an independent in-process run of the same spec, every double
// compared by bit pattern.
TEST_F(BusDaemonTest, ConcurrentClientsGetBitIdenticalResults) {
  serve("ident");

  CpaJobSpec cpa;
  cpa.channel = util::FourCc("PHPC").code();
  cpa.known_key = test_key();
  cpa.models = {power::PowerModel::rd0_hw, power::PowerModel::rd10_hw};
  cpa.shards = 2;

  TvlaJobSpec tvla;
  tvla.shards = 3;

  CpaJobResult cpa_served;
  TvlaJobResult tvla_served;
  std::uint64_t cpa_progress_final = 0;
  std::uint64_t tvla_progress_total = 0;

  std::thread cpa_client([&] {
    BusClient client(daemon_->socket_path());
    const std::uint64_t id = client.submit_cpa("bench", cpa);
    const JobStatusMsg status = client.watch(
        id, [&](const ProgressMsg& p) { cpa_progress_final = p.consumed; });
    ASSERT_EQ(status.state, JobState::done);
    EXPECT_EQ(status.consumed, status.total);
    EXPECT_EQ(status.total, rows);
    cpa_served = client.cpa_result(id);
  });
  std::thread tvla_client([&] {
    BusClient client(daemon_->socket_path());
    const std::uint64_t id = client.submit_tvla("bench", tvla);
    const JobStatusMsg status = client.watch(
        id, [&](const ProgressMsg& p) { tvla_progress_total = p.total; });
    ASSERT_EQ(status.state, JobState::done);
    EXPECT_EQ(status.consumed, status.total);
    EXPECT_EQ(status.total, rows);
    tvla_served = client.tvla_result(id);
  });
  cpa_client.join();
  tvla_client.join();

  // Progress frames (if any arrived before the job went terminal) never
  // overshot the dataset.
  EXPECT_LE(cpa_progress_final, rows);
  EXPECT_LE(tvla_progress_total, rows);

  const auto mapping = store::SharedMapping::open(dataset_path_);
  expect_cpa_bit_identical(cpa_served, run_cpa_job(mapping, cpa));
  expect_tvla_bit_identical(tvla_served, run_tvla_job(mapping, tvla));
  EXPECT_EQ(cpa_served.traces, rows);
  EXPECT_EQ(tvla_served.traces_per_set, rows / 6);
}

// The fair-scheduler acceptance test: one large multi-shard job plus
// four small ones land concurrently; the scheduler interleaves their
// shard units over the shared pool and every served result still equals
// its in-process rerun bit-for-bit.
TEST_F(BusDaemonTest, FairSchedulerInterleavesConcurrentJobsBitIdentically) {
  serve("fair", /*quota=*/8);

  CpaJobSpec large;
  large.channel = util::FourCc("PHPC").code();
  large.known_key = test_key();
  large.models = {power::PowerModel::rd0_hw, power::PowerModel::rd10_hw};
  large.shards = 8;

  constexpr int n_small = 4;
  CpaJobSpec small_cpa;
  small_cpa.channel = util::FourCc("PMVC").code();
  small_cpa.known_key = test_key();
  small_cpa.shards = 2;
  TvlaJobSpec small_tvla;
  small_tvla.shards = 3;

  CpaJobResult large_served;
  std::vector<CpaJobResult> small_cpa_served(n_small);
  std::vector<TvlaJobResult> small_tvla_served(n_small);

  std::thread large_client([&] {
    BusClient client(daemon_->socket_path());
    const std::uint64_t id = client.submit_cpa("bench", large);
    const JobStatusMsg status = client.watch(id);
    ASSERT_EQ(status.state, JobState::done);
    large_served = client.cpa_result(id);
  });
  std::vector<std::thread> small_clients;
  for (int i = 0; i < n_small; ++i) {
    small_clients.emplace_back([&, i] {
      BusClient client(daemon_->socket_path());
      const std::uint64_t cpa_id = client.submit_cpa("bench", small_cpa);
      const std::uint64_t tvla_id = client.submit_tvla("bench", small_tvla);
      ASSERT_EQ(client.watch(cpa_id).state, JobState::done);
      ASSERT_EQ(client.watch(tvla_id).state, JobState::done);
      small_cpa_served[i] = client.cpa_result(cpa_id);
      small_tvla_served[i] = client.tvla_result(tvla_id);
    });
  }
  large_client.join();
  for (std::thread& t : small_clients) {
    t.join();
  }

  const auto mapping = store::SharedMapping::open(dataset_path_);
  expect_cpa_bit_identical(large_served, run_cpa_job(mapping, large));
  const CpaJobResult small_cpa_local = run_cpa_job(mapping, small_cpa);
  const TvlaJobResult small_tvla_local = run_tvla_job(mapping, small_tvla);
  for (int i = 0; i < n_small; ++i) {
    expect_cpa_bit_identical(small_cpa_served[i], small_cpa_local);
    expect_tvla_bit_identical(small_tvla_served[i], small_tvla_local);
  }
}

// STATS frame + decode-once: two identical jobs over the compressed
// dataset must decode every chunk exactly once between them — the second
// job is served entirely from the shared cache.
TEST_F(BusDaemonTest, StatsReportDecodeOnceAcrossJobs) {
  serve("stats");
  BusClient client(daemon_->socket_path());

  const StatsMsg before = client.stats();
  EXPECT_EQ(before.jobs_submitted, 0u);
  EXPECT_EQ(before.jobs_active, 0u);
  EXPECT_GT(before.cache_capacity_bytes, 0u);
  EXPECT_EQ(before.cache_misses, 0u);
  EXPECT_GE(before.pool_threads, 1u);

  CpaJobSpec cpa;
  cpa.channel = util::FourCc("PHPC").code();
  cpa.known_key = test_key();
  cpa.shards = 2;
  for (int round = 0; round < 2; ++round) {
    const std::uint64_t id = client.submit_cpa("bench", cpa);
    ASSERT_EQ(client.watch(id).state, JobState::done);
  }

  const StatsMsg after = client.stats();
  EXPECT_EQ(after.jobs_submitted, 2u);
  EXPECT_EQ(after.jobs_active, 0u);
  EXPECT_TRUE(after.jobs.empty());  // only non-terminal jobs are listed
  // Every chunk is delta_bitpack-coded, so each of the file's chunks is
  // decoded exactly once; the second job hits on all of them.
  constexpr std::uint64_t chunks = (rows + chunk_rows - 1) / chunk_rows;
  EXPECT_EQ(after.cache_misses, chunks);
  EXPECT_GE(after.cache_hits, chunks);
  EXPECT_GT(after.cache_resident_bytes, 0u);
  EXPECT_EQ(after.cache_entries, chunks);
}

TEST_F(BusDaemonTest, CacheDisabledServesIdenticalResults) {
  serve("nocache", /*quota=*/4, /*shard_parallelism=*/0,
        /*chunk_cache_mb=*/0);
  BusClient client(daemon_->socket_path());
  CpaJobSpec cpa;
  cpa.channel = util::FourCc("PHPC").code();
  cpa.known_key = test_key();
  cpa.shards = 2;
  const std::uint64_t id = client.submit_cpa("bench", cpa);
  ASSERT_EQ(client.watch(id).state, JobState::done);
  const CpaJobResult served = client.cpa_result(id);
  const auto mapping = store::SharedMapping::open(dataset_path_);
  expect_cpa_bit_identical(served, run_cpa_job(mapping, cpa));
  // With no cache configured, the STATS frame reports it disabled.
  const StatsMsg stats = client.stats();
  EXPECT_EQ(stats.cache_capacity_bytes, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
}

TEST_F(BusDaemonTest, SequentialShardParallelismPinsLegacyExecution) {
  // shard_parallelism = 1 pins jobs to sequential shard execution (the
  // bench baseline); results are of course still bit-identical.
  serve("seqpin", /*quota=*/4, /*shard_parallelism=*/1);
  BusClient client(daemon_->socket_path());
  TvlaJobSpec tvla;
  tvla.shards = 3;
  const std::uint64_t id = client.submit_tvla("bench", tvla);
  ASSERT_EQ(client.watch(id).state, JobState::done);
  const TvlaJobResult served = client.tvla_result(id);
  const auto mapping = store::SharedMapping::open(dataset_path_);
  expect_tvla_bit_identical(served, run_tvla_job(mapping, tvla));
}

TEST_F(BusDaemonTest, QuotaZeroRejectsEverySubmit) {
  serve("quota", /*quota=*/0);
  BusClient client(daemon_->socket_path());
  try {
    client.submit_cpa("bench", CpaJobSpec{.channel =
                                              util::FourCc("PHPC").code()});
    FAIL() << "expected BusRemoteError";
  } catch (const BusRemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::quota_exceeded);
  }
  client.ping();  // connection survives a rejected submit
}

TEST_F(BusDaemonTest, UnknownDatasetAndJobAreLoudErrors) {
  serve("unknown");
  BusClient client(daemon_->socket_path());
  try {
    client.submit_tvla("nope", TvlaJobSpec{});
    FAIL() << "expected BusRemoteError";
  } catch (const BusRemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::unknown_dataset);
  }
  try {
    client.status(12345);
    FAIL() << "expected BusRemoteError";
  } catch (const BusRemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::unknown_job);
  }
  try {
    client.cpa_result(12345);
    FAIL() << "expected BusRemoteError";
  } catch (const BusRemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::unknown_job);
  }
}

TEST_F(BusDaemonTest, BadSpecFailsTheJobAndRelaysTheMessage) {
  serve("badspec");
  BusClient client(daemon_->socket_path());
  // Channel "XXXX" does not exist in the dataset: the job is accepted
  // (the spec is well-formed on the wire) but fails server-side.
  CpaJobSpec cpa;
  cpa.channel = util::FourCc("XXXX").code();
  const std::uint64_t id = client.submit_cpa("bench", cpa);
  const JobStatusMsg status = client.watch(id);
  EXPECT_EQ(status.state, JobState::failed);
  EXPECT_NE(status.error.find("XXXX"), std::string::npos);
  try {
    client.cpa_result(id);
    FAIL() << "expected BusRemoteError";
  } catch (const BusRemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::internal);
    EXPECT_NE(std::string(e.what()).find("XXXX"), std::string::npos);
  }
  // The failed job released its quota slot.
  EXPECT_EQ(daemon_->jobs().in_flight(1), 0u);
}

// Each kind of wire garbage must cost only the offending connection:
// the daemon answers (best-effort) with one ERROR frame, closes, and
// keeps serving everyone else.
TEST_F(BusDaemonTest, GarbageFramesDontCrashOrWedgeTheDaemon) {
  serve("garbage");

  const auto hurl = [&](const std::vector<std::byte>& bytes) {
    Socket socket = connect_unix(daemon_->socket_path());
    ASSERT_EQ(::send(socket.fd(), bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
    // Half-close so the daemon sees EOF even when the bytes stop mid-frame
    // (otherwise both sides block: it waits for the rest of the header,
    // we wait for a reply).
    ::shutdown(socket.fd(), SHUT_WR);
    // Read until the daemon hangs up; it may send one ERROR frame first.
    std::vector<std::byte> payload;
    try {
      while (recv_frame(socket, payload).has_value()) {
      }
    } catch (const std::exception&) {
      // Daemon closed mid-frame or sent nothing parseable back — fine;
      // the property under test is daemon survival, checked below.
    }
  };

  std::vector<std::byte> frame(frame_header_bytes + 4, std::byte{0});
  std::memcpy(frame.data(), "JUNK", 4);  // bad magic
  hurl(frame);

  std::memcpy(frame.data(), frame_magic, 4);
  store::put_u16(frame.data() + 4, 0x7fff);  // bad version
  hurl(frame);

  store::put_u16(frame.data() + 4, protocol_version);
  store::put_u16(frame.data() + 6, 9 /*ping*/);
  store::put_u32(frame.data() + 8, 4);
  store::put_u32(frame.data() + 12, 0xdeadbeef);  // wrong CRC
  hurl(frame);

  store::put_u32(frame.data() + 8, 0x40000000);  // 1 GiB declared length
  hurl(frame);

  hurl({std::byte{'P'}, std::byte{'S'}});  // truncated header, then EOF

  // After all of that: a well-behaved client is served normally.
  BusClient client(daemon_->socket_path());
  client.ping();
  EXPECT_EQ(client.list_datasets().size(), 1u);
}

TEST_F(BusDaemonTest, MidJobDisconnectLeaksNothing) {
  serve("discon", /*quota=*/2);
  std::uint64_t id = 0;
  {
    // Submit and vanish: the daemon must finish the job anyway, release
    // the quota slot, and keep the result fetchable from elsewhere.
    BusClient client(daemon_->socket_path());
    CpaJobSpec cpa;
    cpa.channel = util::FourCc("PHPC").code();
    cpa.known_key = test_key();
    id = client.submit_cpa("bench", cpa);
  }  // client destroyed: connection drops while the job runs

  BusClient other(daemon_->socket_path());
  const JobStatusMsg status = other.watch(id);
  EXPECT_EQ(status.state, JobState::done);
  const CpaJobResult served = other.cpa_result(id);
  EXPECT_EQ(served.traces, rows);

  // Both quota slots of the (gone) session are free again; sessions are
  // per-connection so just confirm nothing is charged anywhere.
  EXPECT_EQ(daemon_->jobs().in_flight(1), 0u);
  EXPECT_EQ(daemon_->jobs().in_flight(2), 0u);
}

TEST_F(BusDaemonTest, ProtocolShutdownDrainsThenStops) {
  serve("shutdown");
  BusClient client(daemon_->socket_path());
  CpaJobSpec cpa;
  cpa.channel = util::FourCc("PHPC").code();
  const std::uint64_t id = client.submit_cpa("bench", cpa);
  client.shutdown_server();
  daemon_->wait();

  // Drained, not aborted: the submitted job reached a terminal state.
  const auto status = daemon_->jobs().status(id);
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->state, JobState::done);
  // Socket file unlinked; new connections are refused.
  EXPECT_THROW(BusClient{daemon_->socket_path()}, BusError);
}

TEST_F(BusDaemonTest, SigtermStopsTheDaemonGracefully) {
  serve("sigterm");
  BusDaemon::install_signal_handlers(*daemon_);
  BusClient client(daemon_->socket_path());
  client.ping();
  ASSERT_EQ(::raise(SIGTERM), 0);
  daemon_->wait();
  EXPECT_THROW(BusClient{daemon_->socket_path()}, BusError);
  // Restore default dispositions for the rest of the test binary.
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
}

}  // namespace
}  // namespace psc::bus
