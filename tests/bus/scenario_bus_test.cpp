// Protocol v3 scenario jobs, end to end: the SCENARIOS listing must
// mirror the built-in registry, a served scenario job must be
// bit-identical to the same spec run in-process (the --verify-local
// contract, asserted for both the TVLA-only and the CPA path), scenario
// messages must round-trip the wire exactly, and the error paths must be
// typed ERROR frames on a connection that stays open — an unknown name
// or malformed params never cost the client its connection, let alone
// the daemon.
#include <gtest/gtest.h>

#include <bit>
#include <string>
#include <vector>

#include "bus/client.h"
#include "bus/daemon.h"
#include "bus/scenario_jobs.h"
#include "scenario/registry.h"

namespace psc::bus {
namespace {

std::string socket_path(const std::string& tag) {
  return "/tmp/psc_scn_" + std::to_string(::getpid()) + "_" + tag + ".sock";
}

template <typename Msg>
Msg reencode(const Msg& msg) {
  PayloadWriter w;
  msg.encode(w);
  PayloadReader r(w.bytes());
  Msg out = Msg::decode(r);
  r.expect_end();
  return out;
}

void expect_bits_equal(double a, double b, const std::string& what) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << what;
}

void expect_scenario_bit_identical(const ScenarioJobResult& a,
                                   const ScenarioJobResult& b) {
  EXPECT_EQ(a.scenario, b.scenario);
  EXPECT_EQ(a.secret, b.secret);
  EXPECT_EQ(a.traces_per_set, b.traces_per_set);
  EXPECT_EQ(a.cpa_trace_count, b.cpa_trace_count);
  EXPECT_EQ(a.channels, b.channels);
  EXPECT_EQ(a.leakage_channels, b.leakage_channels);
  ASSERT_EQ(a.tvla.size(), b.tvla.size());
  for (std::size_t c = 0; c < a.tvla.size(); ++c) {
    EXPECT_EQ(a.tvla[c].channel, b.tvla[c].channel);
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < 3; ++j) {
        expect_bits_equal(a.tvla[c].matrix.t[i][j], b.tvla[c].matrix.t[i][j],
                          "tvla " + a.tvla[c].channel);
      }
    }
  }
  ASSERT_EQ(a.cpa.size(), b.cpa.size());
  for (std::size_t k = 0; k < a.cpa.size(); ++k) {
    const core::CpaKeyResult& x = a.cpa[k];
    const core::CpaKeyResult& y = b.cpa[k];
    EXPECT_EQ(x.key, y.key);
    ASSERT_EQ(x.final_results.size(), y.final_results.size());
    for (std::size_t m = 0; m < x.final_results.size(); ++m) {
      const core::ModelResult& u = x.final_results[m];
      const core::ModelResult& v = y.final_results[m];
      EXPECT_EQ(u.model, v.model);
      EXPECT_EQ(u.true_ranks, v.true_ranks);
      EXPECT_EQ(u.best_round_key, v.best_round_key);
      EXPECT_EQ(u.recovered_bytes, v.recovered_bytes);
      expect_bits_equal(u.ge_bits, v.ge_bits, "ge_bits");
      expect_bits_equal(u.mean_rank, v.mean_rank, "mean_rank");
      for (std::size_t i = 0; i < 16; ++i) {
        for (std::size_t g = 0; g < 256; ++g) {
          ASSERT_EQ(std::bit_cast<std::uint64_t>(u.bytes[i].correlation[g]),
                    std::bit_cast<std::uint64_t>(v.bytes[i].correlation[g]))
              << "key " << x.key.str() << " model " << m << " byte " << i
              << " guess " << g;
        }
      }
    }
    ASSERT_EQ(x.curves.size(), y.curves.size());
    for (std::size_t m = 0; m < x.curves.size(); ++m) {
      ASSERT_EQ(x.curves[m].size(), y.curves[m].size());
      for (std::size_t p = 0; p < x.curves[m].size(); ++p) {
        EXPECT_EQ(x.curves[m][p].traces, y.curves[m][p].traces);
        EXPECT_EQ(x.curves[m][p].recovered_bytes,
                  y.curves[m][p].recovered_bytes);
        expect_bits_equal(x.curves[m][p].ge_bits, y.curves[m][p].ge_bits,
                          "curve ge_bits");
        expect_bits_equal(x.curves[m][p].mean_rank, y.curves[m][p].mean_rank,
                          "curve mean_rank");
      }
    }
  }
}

class ScenarioBusTest : public ::testing::Test {
 protected:
  void serve(const std::string& tag) {
    BusDaemonConfig config;
    config.socket_path = socket_path(tag);
    config.pool_reserve = 4;
    daemon_ = std::make_unique<BusDaemon>(std::move(config));
    daemon_->start();
  }

  void TearDown() override {
    if (daemon_ != nullptr) {
      daemon_->stop();
    }
  }

  std::unique_ptr<BusDaemon> daemon_;
};

// ---------------------------------------------------------------- wire

TEST(ScenarioProtocol, SubmitScenarioMsgRoundTrips) {
  ScenarioJobSpec spec;
  spec.scenario = "cache-timing";
  spec.params = {{"lines", "8"}, {"leak", "0"}};
  spec.traces_per_set = 321;
  spec.seed = 0xfeedULL;
  spec.shards = 5;
  const SubmitScenarioMsg out = reencode(SubmitScenarioMsg{spec});
  EXPECT_EQ(out.spec.scenario, spec.scenario);
  EXPECT_EQ(out.spec.params, spec.params);
  EXPECT_EQ(out.spec.traces_per_set, spec.traces_per_set);
  EXPECT_EQ(out.spec.seed, spec.seed);
  EXPECT_EQ(out.spec.shards, spec.shards);
}

TEST(ScenarioProtocol, ScenarioListMsgRoundTripsRegistryDescription) {
  ScenarioListMsg msg;
  for (const scenario::ScenarioInfo& info :
       scenario::ScenarioRegistry::built_in().describe_all()) {
    msg.scenarios.push_back({info.name, info.description, info.victim,
                             info.channel, info.params, info.channels,
                             info.analysis.cpa,
                             info.analysis.default_traces_per_set});
  }
  const ScenarioListMsg out = reencode(msg);
  ASSERT_EQ(out.scenarios.size(), msg.scenarios.size());
  for (std::size_t i = 0; i < msg.scenarios.size(); ++i) {
    EXPECT_EQ(out.scenarios[i].name, msg.scenarios[i].name);
    EXPECT_EQ(out.scenarios[i].description, msg.scenarios[i].description);
    EXPECT_EQ(out.scenarios[i].victim, msg.scenarios[i].victim);
    EXPECT_EQ(out.scenarios[i].channel, msg.scenarios[i].channel);
    EXPECT_EQ(out.scenarios[i].channels, msg.scenarios[i].channels);
    EXPECT_EQ(out.scenarios[i].cpa, msg.scenarios[i].cpa);
    EXPECT_EQ(out.scenarios[i].default_traces_per_set,
              msg.scenarios[i].default_traces_per_set);
    ASSERT_EQ(out.scenarios[i].params.size(), msg.scenarios[i].params.size());
    for (std::size_t p = 0; p < msg.scenarios[i].params.size(); ++p) {
      EXPECT_EQ(out.scenarios[i].params[p].name,
                msg.scenarios[i].params[p].name);
      EXPECT_EQ(out.scenarios[i].params[p].default_value,
                msg.scenarios[i].params[p].default_value);
      EXPECT_EQ(out.scenarios[i].params[p].description,
                msg.scenarios[i].params[p].description);
    }
  }
}

TEST(ScenarioProtocol, ScenarioResultMsgRoundTripsRealRunBitForBit) {
  ScenarioJobSpec spec;
  spec.scenario = "sqmul-timing";
  spec.traces_per_set = 60;
  spec.seed = 11;
  const ScenarioJobResult result = run_scenario_job(spec);
  const ScenarioResultMsg out = reencode(ScenarioResultMsg{42, result});
  EXPECT_EQ(out.id, 42u);
  expect_scenario_bit_identical(out.result, result);
}

TEST(ScenarioProtocol, ResolvedShardsArePureAndBounded) {
  ScenarioJobSpec spec;
  spec.scenario = "sqmul-timing";
  spec.shards = 7;
  // Explicit count is taken verbatim.
  EXPECT_EQ(resolved_scenario_shards(spec, 100), 7u);
  // Auto never exceeds the per-set trace count and never returns 0.
  spec.shards = 0;
  EXPECT_EQ(resolved_scenario_shards(spec, 1), 1u);
  EXPECT_GE(resolved_scenario_shards(spec, 100000), 1u);
  for (const std::uint64_t per_set : {1ULL, 3ULL, 50ULL, 4000ULL}) {
    EXPECT_LE(resolved_scenario_shards(spec, per_set), per_set);
    // Purity: the same spec resolves identically on every call.
    EXPECT_EQ(resolved_scenario_shards(spec, per_set),
              resolved_scenario_shards(spec, per_set));
  }
}

// -------------------------------------------------------------- daemon

TEST_F(ScenarioBusTest, ScenariosListingMatchesBuiltInRegistry) {
  serve("list");
  BusClient client(daemon_->socket_path());
  const auto served = client.list_scenarios();
  const auto local = scenario::ScenarioRegistry::built_in().describe_all();
  ASSERT_EQ(served.size(), local.size());
  for (std::size_t i = 0; i < local.size(); ++i) {
    EXPECT_EQ(served[i].name, local[i].name);
    EXPECT_EQ(served[i].description, local[i].description);
    EXPECT_EQ(served[i].victim, local[i].victim);
    EXPECT_EQ(served[i].channel, local[i].channel);
    EXPECT_EQ(served[i].channels, local[i].channels);
    EXPECT_EQ(served[i].cpa, local[i].analysis.cpa);
    EXPECT_EQ(served[i].default_traces_per_set,
              local[i].analysis.default_traces_per_set);
    ASSERT_EQ(served[i].params.size(), local[i].params.size());
    for (std::size_t p = 0; p < local[i].params.size(); ++p) {
      EXPECT_EQ(served[i].params[p].name, local[i].params[p].name);
      EXPECT_EQ(served[i].params[p].default_value,
                local[i].params[p].default_value);
    }
  }
}

// The --verify-local contract for a TVLA-only scenario: the daemon runs
// with its own worker/parallelism budget, the client re-runs the spec
// single-worker; scenario results are worker-invariant, so every double
// must match by bit pattern.
TEST_F(ScenarioBusTest, ServedTvlaScenarioJobIsBitIdenticalToLocalRun) {
  serve("tvla");
  ScenarioJobSpec spec;
  spec.scenario = "sqmul-timing";
  spec.params = {{"noise_ns", "150"}};
  spec.traces_per_set = 90;
  spec.seed = 5;

  BusClient client(daemon_->socket_path());
  const std::uint64_t id = client.submit_scenario(spec);
  ASSERT_NE(id, 0u);
  std::uint64_t last_consumed = 0;
  const JobStatusMsg status = client.watch(
      id, [&](const ProgressMsg& p) { last_consumed = p.consumed; });
  ASSERT_EQ(status.state, JobState::done) << status.error;
  EXPECT_EQ(status.consumed, status.total);
  EXPECT_LE(last_consumed, status.total);

  const ScenarioJobResult served = client.scenario_result(id);
  expect_scenario_bit_identical(served, run_scenario_job(spec));
  EXPECT_EQ(served.scenario, "sqmul-timing");
  EXPECT_EQ(served.traces_per_set, 90u);
}

// Same contract through the CPA path (aes-power scenarios attach the
// CPA/GE sinks, so key-rank curves and correlation tables cross the
// wire too).
TEST_F(ScenarioBusTest, ServedCpaScenarioJobIsBitIdenticalToLocalRun) {
  serve("cpa");
  ScenarioJobSpec spec;
  spec.scenario = "aes-power-user";
  spec.traces_per_set = 36;
  spec.seed = 9;

  BusClient client(daemon_->socket_path());
  const std::uint64_t id = client.submit_scenario(spec);
  ASSERT_NE(id, 0u);
  const JobStatusMsg status = client.watch(id);
  ASSERT_EQ(status.state, JobState::done) << status.error;

  const ScenarioJobResult served = client.scenario_result(id);
  ASSERT_FALSE(served.cpa.empty());
  expect_scenario_bit_identical(served, run_scenario_job(spec));
}

// Satellite: SUBMIT with an unknown scenario name answers a typed ERROR
// frame and nothing else — the same connection keeps working, the next
// submit on it is served, and the daemon never aborts.
TEST_F(ScenarioBusTest, UnknownScenarioIsTypedErrorAndConnectionSurvives) {
  serve("unknown");
  BusClient client(daemon_->socket_path());

  ScenarioJobSpec spec;
  spec.scenario = "no-such-scenario";
  try {
    client.submit_scenario(spec);
    FAIL() << "submit of an unknown scenario must throw";
  } catch (const BusRemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::unknown_scenario);
  }

  // Same connection, same socket: still alive and serving.
  client.ping();
  spec.scenario = "sqmul-timing";
  spec.traces_per_set = 30;
  const std::uint64_t id = client.submit_scenario(spec);
  ASSERT_NE(id, 0u);
  EXPECT_EQ(client.watch(id).state, JobState::done);
}

TEST_F(ScenarioBusTest, MalformedParamsAreTypedErrorsAndConnectionSurvives) {
  serve("params");
  BusClient client(daemon_->socket_path());

  ScenarioJobSpec spec;
  spec.scenario = "cache-timing";
  spec.params = {{"no-such-knob", "1"}};
  try {
    client.submit_scenario(spec);
    FAIL() << "submit with an unknown param must throw";
  } catch (const BusRemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::bad_request);
  }

  // A malformed value (unparsable number) is also a typed error.
  spec.params = {{"lines", "many"}};
  try {
    client.submit_scenario(spec);
    FAIL() << "submit with an unparsable param value must throw";
  } catch (const BusRemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::bad_request);
  }

  client.ping();
  spec.params = {{"lines", "4"}};
  spec.traces_per_set = 30;
  const std::uint64_t id = client.submit_scenario(spec);
  ASSERT_NE(id, 0u);
  EXPECT_EQ(client.watch(id).state, JobState::done);
}

}  // namespace
}  // namespace psc::bus
