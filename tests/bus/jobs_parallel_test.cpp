// Shard-parallel job execution: the result of run_cpa_job/run_tvla_job
// must be a pure function of (dataset, spec) — running shard units on
// the worker pool under any budget yields doubles bit-identical to the
// sequential in-process run. Also covers the shards=0 auto-sizing
// policy, monotone aggregated progress, shard-activity telemetry, and a
// hammer of concurrent jobs sharing one mapping + one chunk cache (the
// TSan suite runs this file).
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bus/jobs.h"
#include "core/campaigns.h"
#include "core/parallel.h"
#include "store/chunk_cache.h"
#include "store/pstr_format.h"
#include "store/shared_mapping.h"
#include "store/trace_file_writer.h"
#include "util/rng.h"

namespace psc::bus {
namespace {

constexpr std::size_t rows = 1920;  // divisible by 6 for TVLA sets
constexpr std::size_t chunk_rows = 256;
constexpr std::size_t n_channels = 2;

aes::Block test_key() {
  aes::Block key;
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i * 29 + 5);
  }
  return key;
}

// Quantized channels so delta_bitpack engages: shard readers hit the
// decode path, which is what the shared chunk cache intercepts.
std::shared_ptr<const store::SharedMapping> write_dataset(
    const std::string& name, std::size_t n_rows = rows) {
  const std::string path = ::testing::TempDir() + name;
  util::Xoshiro256 rng(1234);
  core::TraceBatch batch(n_channels);
  batch.resize(n_rows);
  for (auto& pt : batch.plaintexts()) {
    rng.fill_bytes(pt);
  }
  for (auto& ct : batch.ciphertexts()) {
    rng.fill_bytes(ct);
  }
  for (std::size_t c = 0; c < n_channels; ++c) {
    double level = 2.0;
    for (auto& v : batch.column(c)) {
      level += rng.gaussian(0.0, 1e-4);
      v = static_cast<double>(
          static_cast<float>(std::round(level * 1e6) / 1e6));
    }
  }
  store::TraceFileWriter writer(
      path, {.channels = {util::FourCc("PHPC"), util::FourCc("PMVC")},
             .chunk_capacity = chunk_rows,
             .channel_codecs = store::uniform_channel_codecs(
                 n_channels, store::ColumnCodec::delta_bitpack)});
  writer.append(batch);
  writer.finalize();
  return store::SharedMapping::open(path);
}

void expect_cpa_bit_identical(const CpaJobResult& a, const CpaJobResult& b) {
  ASSERT_EQ(a.traces, b.traces);
  ASSERT_EQ(a.models.size(), b.models.size());
  for (std::size_t m = 0; m < a.models.size(); ++m) {
    const core::ModelResult& x = a.models[m];
    const core::ModelResult& y = b.models[m];
    EXPECT_EQ(x.true_ranks, y.true_ranks);
    EXPECT_EQ(x.scored_key, y.scored_key);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(x.ge_bits),
              std::bit_cast<std::uint64_t>(y.ge_bits));
    for (std::size_t i = 0; i < 16; ++i) {
      for (std::size_t g = 0; g < 256; ++g) {
        ASSERT_EQ(std::bit_cast<std::uint64_t>(x.bytes[i].correlation[g]),
                  std::bit_cast<std::uint64_t>(y.bytes[i].correlation[g]))
            << "model " << m << " byte " << i << " guess " << g;
      }
    }
  }
}

void expect_tvla_bit_identical(const TvlaJobResult& a, const TvlaJobResult& b) {
  ASSERT_EQ(a.traces_per_set, b.traces_per_set);
  ASSERT_EQ(a.channels.size(), b.channels.size());
  for (std::size_t c = 0; c < a.channels.size(); ++c) {
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < 3; ++j) {
        ASSERT_EQ(std::bit_cast<std::uint64_t>(a.channels[c].matrix.t[i][j]),
                  std::bit_cast<std::uint64_t>(b.channels[c].matrix.t[i][j]))
            << "channel " << c << " cell " << i << "," << j;
      }
    }
  }
}

JobExecOptions budget(std::uint32_t n) {
  JobExecOptions exec;
  exec.shard_budget = [n] { return n; };
  return exec;
}

TEST(ResolvedJobShards, ExplicitCountWinsVerbatim) {
  EXPECT_EQ(resolved_job_shards(1, 100), 1u);
  EXPECT_EQ(resolved_job_shards(5, 100), 5u);
  EXPECT_EQ(resolved_job_shards(64, 1u << 30), 64u);  // above the auto cap
}

TEST(ResolvedJobShards, ZeroAutoSizesByTraceCount) {
  const std::uint64_t per = core::min_traces_per_shard;
  EXPECT_EQ(resolved_job_shards(0, 0), 1u);
  EXPECT_EQ(resolved_job_shards(0, 100), 1u);
  EXPECT_EQ(resolved_job_shards(0, per - 1), 1u);
  EXPECT_EQ(resolved_job_shards(0, per), 1u);
  EXPECT_EQ(resolved_job_shards(0, 2 * per), 2u);
  EXPECT_EQ(resolved_job_shards(0, 3 * per + per / 2), 3u);
  EXPECT_EQ(resolved_job_shards(0, 1000 * per), auto_shard_cap);
}

TEST(JobsParallel, CpaParallelMatchesSequentialAcrossShardsAndBudgets) {
  core::WorkerPool::instance().reserve(4);
  const auto dataset = write_dataset("jobs_par_cpa.pstr");
  CpaJobSpec spec;
  spec.channel = util::FourCc("PHPC").code();
  spec.known_key = test_key();
  spec.models = {power::PowerModel::rd0_hw};

  for (const std::uint32_t shards : {1u, 2u, 3u, 8u}) {
    spec.shards = shards;
    const CpaJobResult reference = run_cpa_job(dataset, spec);
    for (const std::uint32_t b : {2u, 4u}) {
      SCOPED_TRACE("shards " + std::to_string(shards) + " budget " +
                   std::to_string(b));
      expect_cpa_bit_identical(reference,
                               run_cpa_job(dataset, spec, {}, budget(b)));
    }
  }
}

TEST(JobsParallel, TvlaParallelMatchesSequentialAcrossShardsAndBudgets) {
  core::WorkerPool::instance().reserve(4);
  const auto dataset = write_dataset("jobs_par_tvla.pstr");
  TvlaJobSpec spec;
  for (const std::uint32_t shards : {1u, 2u, 3u}) {
    spec.shards = shards;
    const TvlaJobResult reference = run_tvla_job(dataset, spec);
    for (const std::uint32_t b : {2u, 4u}) {
      SCOPED_TRACE("shards " + std::to_string(shards) + " budget " +
                   std::to_string(b));
      expect_tvla_bit_identical(reference,
                                run_tvla_job(dataset, spec, {}, budget(b)));
    }
  }
}

TEST(JobsParallel, AutoShardsResolveIdenticallyEverywhere) {
  const auto dataset = write_dataset("jobs_par_auto.pstr");
  // shards = 0 must behave exactly like the resolved explicit count,
  // sequential or parallel — the policy is a pure function of the trace
  // count, so daemon and verification runs can never disagree.
  TvlaJobSpec auto_spec;  // shards = 0
  TvlaJobSpec explicit_spec;
  explicit_spec.shards = resolved_job_shards(0, rows);
  const TvlaJobResult reference = run_tvla_job(dataset, explicit_spec);
  expect_tvla_bit_identical(reference, run_tvla_job(dataset, auto_spec));
  expect_tvla_bit_identical(reference,
                            run_tvla_job(dataset, auto_spec, {}, budget(4)));
}

TEST(JobsParallel, ProgressAggregatesMonotonicallyToTotal) {
  core::WorkerPool::instance().reserve(4);
  const auto dataset = write_dataset("jobs_par_prog.pstr");
  CpaJobSpec spec;
  spec.channel = util::FourCc("PHPC").code();
  spec.known_key = test_key();
  spec.shards = 4;

  std::mutex mu;
  std::uint64_t watermark = 0;
  std::uint64_t reported_total = 0;
  JobExecOptions exec = budget(4);
  const CpaJobResult result = run_cpa_job(
      dataset, spec,
      [&](std::uint64_t consumed, std::uint64_t total) {
        // Out-of-order delivery is allowed; values must stay in range and
        // the high-water mark must reach the dataset size.
        std::lock_guard<std::mutex> lock(mu);
        EXPECT_LE(consumed, total);
        watermark = std::max(watermark, consumed);
        reported_total = total;
      },
      exec);
  EXPECT_EQ(result.traces, rows);
  EXPECT_EQ(watermark, rows);
  EXPECT_EQ(reported_total, rows);
}

TEST(JobsParallel, ShardActivityReportsResolveStartsAndFinishes) {
  core::WorkerPool::instance().reserve(4);
  const auto dataset = write_dataset("jobs_par_act.pstr");
  TvlaJobSpec spec;
  spec.shards = 6;

  std::mutex mu;
  std::uint32_t resolved = 0;
  std::uint32_t peak = 0;
  std::uint32_t last_running = 99;
  JobExecOptions exec = budget(3);
  exec.on_shard_activity = [&](std::uint32_t shards, std::uint32_t running) {
    std::lock_guard<std::mutex> lock(mu);
    resolved = shards;
    peak = std::max(peak, running);
    last_running = running;
  };
  run_tvla_job(dataset, spec, {}, exec);
  EXPECT_EQ(resolved, 6u);
  EXPECT_GE(peak, 1u);
  EXPECT_LE(peak, 3u);  // never exceeds the budget window
  EXPECT_EQ(last_running, 0u);
}

TEST(JobsParallel, OversubscribedShardsStillThrow) {
  const auto dataset = write_dataset("jobs_par_throw.pstr");
  CpaJobSpec cpa;
  cpa.channel = util::FourCc("PHPC").code();
  cpa.shards = static_cast<std::uint32_t>(rows + 1);
  EXPECT_THROW(run_cpa_job(dataset, cpa, {}, budget(4)),
               std::invalid_argument);
  TvlaJobSpec tvla;
  tvla.shards = static_cast<std::uint32_t>(rows);  // > per_set
  EXPECT_THROW(run_tvla_job(dataset, tvla, {}, budget(4)),
               std::invalid_argument);
}

TEST(JobsParallel, FailedShardPropagatesWithoutMerging) {
  core::WorkerPool::instance().reserve(4);
  const auto dataset = write_dataset("jobs_par_fail.pstr");
  CpaJobSpec spec;
  spec.channel = util::FourCc("XXXX").code();  // no such channel
  spec.shards = 4;
  EXPECT_THROW(run_cpa_job(dataset, spec, {}, budget(4)),
               std::invalid_argument);
}

TEST(JobsParallel, CorruptChunkFailsLoudlyFromAShardUnit) {
  core::WorkerPool::instance().reserve(4);
  // Flip a byte in the middle of the file — inside some chunk's payload —
  // so one shard unit trips the CRC check on a pool thread. The error
  // must surface to the caller as the usual StoreError, not vanish or
  // deadlock the drain.
  const std::string path = ::testing::TempDir() + "jobs_par_corrupt.pstr";
  {
    const auto pristine = write_dataset("jobs_par_corrupt.pstr");
  }
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(0, std::ios::end);
    const std::streamoff mid = f.tellg() / 2;
    f.seekg(mid);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x55);
    f.seekp(mid);
    f.write(&byte, 1);
  }
  const auto corrupt = store::SharedMapping::open(path);
  CpaJobSpec spec;
  spec.channel = util::FourCc("PHPC").code();
  spec.known_key = test_key();
  spec.shards = 8;
  EXPECT_THROW(run_cpa_job(corrupt, spec, {}, budget(4)), store::StoreError);
}

// The TSan target: many jobs over one mapping and one shared cache, all
// shard-parallel, each result bit-identical to its sequential reference.
TEST(JobsParallel, ConcurrentJobsShareOneMappingAndCache) {
  core::WorkerPool::instance().reserve(4);
  const auto dataset = write_dataset("jobs_par_hammer.pstr");
  const auto cache =
      std::make_shared<store::ChunkCache>(std::size_t{64} << 20);

  CpaJobSpec cpa;
  cpa.channel = util::FourCc("PHPC").code();
  cpa.known_key = test_key();
  cpa.shards = 4;
  TvlaJobSpec tvla;
  tvla.shards = 3;

  const CpaJobResult cpa_ref = run_cpa_job(dataset, cpa);
  const TvlaJobResult tvla_ref = run_tvla_job(dataset, tvla);

  constexpr int n_jobs = 6;
  std::vector<CpaJobResult> cpa_got(n_jobs);
  std::vector<TvlaJobResult> tvla_got(n_jobs);
  std::vector<std::thread> drivers;
  for (int j = 0; j < n_jobs; ++j) {
    drivers.emplace_back([&, j] {
      JobExecOptions exec = budget(2);
      exec.chunk_cache = cache;
      if (j % 2 == 0) {
        cpa_got[j] = run_cpa_job(dataset, cpa, {}, exec);
      } else {
        tvla_got[j] = run_tvla_job(dataset, tvla, {}, exec);
      }
    });
  }
  for (std::thread& d : drivers) {
    d.join();
  }
  for (int j = 0; j < n_jobs; ++j) {
    SCOPED_TRACE("job " + std::to_string(j));
    if (j % 2 == 0) {
      expect_cpa_bit_identical(cpa_ref, cpa_got[j]);
    } else {
      expect_tvla_bit_identical(tvla_ref, tvla_got[j]);
    }
  }
  // Decode-once across the whole hammer: every chunk decoded exactly
  // once, everything else was served shared.
  constexpr std::uint64_t chunks = (rows + chunk_rows - 1) / chunk_rows;
  const store::ChunkCache::Stats stats = cache->stats();
  EXPECT_EQ(stats.misses, chunks);
  EXPECT_GT(stats.hits, 0u);
}

}  // namespace
}  // namespace psc::bus
