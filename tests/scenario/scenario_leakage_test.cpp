// Acceptance gates for the new scenarios: cache-timing, dvfs-frequency
// and sqmul-timing must show statistically detectable leakage (cross-class
// TVLA |t| > 4.5) with default parameters, and that leakage must vanish
// when the secret/input-dependent behavior is disabled (`leak=0`). Scores
// also have to stay honest within a class: no same-class false positives.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/tvla.h"
#include "scenario/runner.h"
#include "util/stats.h"

namespace psc::scenario {
namespace {

constexpr std::size_t kPerSet = 800;
constexpr std::uint64_t kSeed = 42;

ScenarioRunResult run(const std::string& name,
                      std::vector<std::pair<std::string, std::string>> params) {
  return run_scenario(name, params,
                      {.traces_per_set = kPerSet, .seed = kSeed,
                       .workers = 2, .shards = 2});
}

void expect_no_same_class_positives(const ScenarioRunResult& result) {
  for (const auto& channel : result.tvla) {
    for (const core::PlaintextClass cls : core::all_plaintext_classes) {
      const double t = std::fabs(channel.matrix.score(cls, cls));
      EXPECT_LT(t, util::tvla_threshold)
          << result.scenario << "/" << channel.channel << " same-class";
    }
  }
}

TEST(ScenarioLeakage, CacheTimingLeaksWithDefaults) {
  const ScenarioRunResult result = run("cache-timing", {});
  EXPECT_GT(result.max_cross_class_t(), util::tvla_threshold);
  expect_no_same_class_positives(result);
}

TEST(ScenarioLeakage, CacheTimingLeakDisappearsWhenInputIndependent) {
  const ScenarioRunResult result = run("cache-timing", {{"leak", "0"}});
  EXPECT_LT(result.max_cross_class_t(), util::tvla_threshold);
}

TEST(ScenarioLeakage, CacheTimingFullSlcOccupancyErasesTheChannel) {
  // EXAM's occupancy observation, pushed to the limit: competing SLC
  // pressure evicting every probe line leaves nothing to reload-time.
  const ScenarioRunResult result =
      run("cache-timing", {{"slc_pressure", "1"}});
  EXPECT_LT(result.max_cross_class_t(), util::tvla_threshold);
}

TEST(ScenarioLeakage, CacheTimingSurvivesModerateSlcPressure) {
  const ScenarioRunResult result =
      run("cache-timing", {{"slc_pressure", "0.25"}});
  EXPECT_GT(result.max_cross_class_t(), util::tvla_threshold);
}

TEST(ScenarioLeakage, DvfsFrequencyLeaksWithDefaults) {
  const ScenarioRunResult result = run("dvfs-frequency", {});
  EXPECT_GT(result.max_cross_class_t(), util::tvla_threshold);
  expect_no_same_class_positives(result);
}

TEST(ScenarioLeakage, DvfsFrequencyLeakDisappearsAtFixedIntensity) {
  const ScenarioRunResult result = run("dvfs-frequency", {{"leak", "0"}});
  EXPECT_LT(result.max_cross_class_t(), util::tvla_threshold);
}

TEST(ScenarioLeakage, SqmulTimingLeaksWithDefaults) {
  const ScenarioRunResult result = run("sqmul-timing", {});
  EXPECT_GT(result.max_cross_class_t(), util::tvla_threshold);
  expect_no_same_class_positives(result);
}

TEST(ScenarioLeakage, SqmulTimingConstantTimeLadderIsSilent) {
  const ScenarioRunResult result = run("sqmul-timing", {{"leak", "0"}});
  EXPECT_LT(result.max_cross_class_t(), util::tvla_threshold);
}

}  // namespace
}  // namespace psc::scenario
