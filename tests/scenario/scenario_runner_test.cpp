// Scenario runner: the legacy AES-power scenarios must run through the
// registry bit-identical to the pre-registry campaign entry points, and
// every scenario result must be a pure function of (seed, shards).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/campaigns.h"
#include "scenario/registry.h"
#include "scenario/runner.h"
#include "soc/device_profile.h"
#include "store/trace_file_reader.h"

namespace psc::scenario {
namespace {

void expect_matrices_identical(const core::TvlaMatrix& a,
                               const core::TvlaMatrix& b,
                               const std::string& what) {
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(a.t[r][c], b.t[r][c]) << what << " cell " << r << "," << c;
    }
  }
}

TEST(ScenarioRunner, AesPowerUserTvlaBitIdenticalToLegacyCampaign) {
  constexpr std::size_t kPerSet = 400;
  constexpr std::uint64_t kSeed = 7;

  core::TvlaCampaignConfig legacy{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::user_space(),
      .traces_per_set = kPerSet,
      .seed = kSeed,
      .workers = 2,
      .shards = 3,
  };
  const core::TvlaCampaignResult expected = core::run_tvla_campaign(legacy);

  const ScenarioRunResult got = run_scenario(
      "aes-power-user", {},
      {.traces_per_set = kPerSet, .seed = kSeed, .workers = 2, .shards = 3});

  EXPECT_EQ(got.secret, expected.victim_key);
  ASSERT_EQ(got.tvla.size(), expected.channels.size());
  for (std::size_t c = 0; c < got.tvla.size(); ++c) {
    EXPECT_EQ(got.tvla[c].channel, expected.channels[c].channel);
    expect_matrices_identical(got.tvla[c].matrix,
                              expected.channels[c].matrix,
                              got.tvla[c].channel);
  }
}

TEST(ScenarioRunner, AesPowerKernelCombinedBitIdenticalToLegacyCampaign) {
  constexpr std::size_t kPerSet = 300;
  constexpr std::uint64_t kSeed = 11;
  const std::vector<std::size_t> checkpoints = {200, 600};

  core::CombinedCampaignConfig legacy{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::kernel_module(),
      .traces_per_set = kPerSet,
      .checkpoints = checkpoints,
      .seed = kSeed,
      .workers = 2,
      .shards = 2,
  };
  const core::CombinedCampaignResult expected =
      core::run_combined_campaign(legacy);

  const ScenarioRunResult got =
      run_scenario("aes-power-kernel", {},
                   {.traces_per_set = kPerSet,
                    .checkpoints = checkpoints,
                    .seed = kSeed,
                    .workers = 2,
                    .shards = 2});

  EXPECT_EQ(got.secret, expected.victim_key);
  ASSERT_EQ(got.tvla.size(), expected.tvla.size());
  for (std::size_t c = 0; c < got.tvla.size(); ++c) {
    EXPECT_EQ(got.tvla[c].channel, expected.tvla[c].channel);
    expect_matrices_identical(got.tvla[c].matrix, expected.tvla[c].matrix,
                              got.tvla[c].channel);
  }

  ASSERT_EQ(got.cpa.size(), expected.cpa.size());
  for (std::size_t k = 0; k < got.cpa.size(); ++k) {
    EXPECT_EQ(got.cpa[k].key, expected.cpa[k].key);
    ASSERT_EQ(got.cpa[k].final_results.size(),
              expected.cpa[k].final_results.size());
    for (std::size_t m = 0; m < got.cpa[k].final_results.size(); ++m) {
      const core::ModelResult& a = got.cpa[k].final_results[m];
      const core::ModelResult& b = expected.cpa[k].final_results[m];
      EXPECT_EQ(a.ge_bits, b.ge_bits);
      EXPECT_EQ(a.mean_rank, b.mean_rank);
      EXPECT_EQ(a.true_ranks, b.true_ranks);
      EXPECT_EQ(a.recovered_bytes, b.recovered_bytes);
    }
    ASSERT_EQ(got.cpa[k].curves.size(), expected.cpa[k].curves.size());
    for (std::size_t m = 0; m < got.cpa[k].curves.size(); ++m) {
      ASSERT_EQ(got.cpa[k].curves[m].size(),
                expected.cpa[k].curves[m].size());
      for (std::size_t p = 0; p < got.cpa[k].curves[m].size(); ++p) {
        EXPECT_EQ(got.cpa[k].curves[m][p].traces,
                  expected.cpa[k].curves[m][p].traces);
        EXPECT_EQ(got.cpa[k].curves[m][p].ge_bits,
                  expected.cpa[k].curves[m][p].ge_bits);
        EXPECT_EQ(got.cpa[k].curves[m][p].mean_rank,
                  expected.cpa[k].curves[m][p].mean_rank);
      }
    }
  }
}

TEST(ScenarioRunner, ResultsAreWorkerInvariant) {
  const ScenarioRunConfig sequential{
      .traces_per_set = 250, .seed = 5, .workers = 1, .shards = 3};
  const ScenarioRunConfig pooled{
      .traces_per_set = 250, .seed = 5, .workers = 4, .shards = 3};
  for (const std::string name : {"cache-timing", "dvfs-frequency",
                                 "sqmul-timing"}) {
    const ScenarioRunResult a = run_scenario(name, {}, sequential);
    const ScenarioRunResult b = run_scenario(name, {}, pooled);
    ASSERT_EQ(a.tvla.size(), b.tvla.size()) << name;
    for (std::size_t c = 0; c < a.tvla.size(); ++c) {
      expect_matrices_identical(a.tvla[c].matrix, b.tvla[c].matrix,
                                name + "/" + a.tvla[c].channel);
    }
    EXPECT_EQ(a.secret, b.secret) << name;
  }
}

TEST(ScenarioRunner, SeedChangesSecretAndResults) {
  const ScenarioRunResult a =
      run_scenario("sqmul-timing", {}, {.traces_per_set = 100, .seed = 1});
  const ScenarioRunResult b =
      run_scenario("sqmul-timing", {}, {.traces_per_set = 100, .seed = 2});
  EXPECT_NE(a.secret, b.secret);
  EXPECT_NE(a.tvla[0].matrix.t, b.tvla[0].matrix.t);
}

TEST(ScenarioRunner, UnknownScenarioAndBadParamsThrow) {
  EXPECT_THROW(run_scenario("no-such-scenario", {}, {}),
               std::invalid_argument);
  EXPECT_THROW(
      run_scenario("cache-timing", {{"bogus", "1"}}, {.traces_per_set = 10}),
      std::invalid_argument);
}

TEST(ScenarioRunner, RecordsAcquisitionToPstr) {
  const std::string path = ::testing::TempDir() + "scenario_record.pstr";
  std::remove(path.c_str());

  constexpr std::size_t kPerSet = 64;
  const ScenarioRunResult result =
      run_scenario("cache-timing", {{"lines", "4"}},
                   {.traces_per_set = kPerSet,
                    .seed = 9,
                    .workers = 1,
                    .shards = 1,
                    .record_path = path});
  ASSERT_EQ(result.channels.size(), 4u);

  store::TraceFileReader reader(path);
  EXPECT_EQ(reader.trace_count(), 6 * kPerSet);
  EXPECT_EQ(reader.channels(), result.channels);

  // Recording a sharded run would interleave writers; rejected up front.
  EXPECT_THROW(run_scenario("cache-timing", {},
                            {.traces_per_set = 16,
                             .shards = 2,
                             .record_path = path}),
               std::invalid_argument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace psc::scenario
