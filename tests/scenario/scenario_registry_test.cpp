// ScenarioRegistry edge cases: duplicate rejection, describe()
// round-trips through parameter parsing, and thread-safety of concurrent
// list()/find()/describe()/instantiate (run under TSan in CI).

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "scenario/registry.h"
#include "scenario/scenario.h"

namespace psc::scenario {
namespace {

TEST(ScenarioRegistry, BuiltInShipsTheFiveScenarios) {
  const std::vector<std::string> names = ScenarioRegistry::built_in().list();
  const std::vector<std::string> expected = {
      "aes-power-user", "aes-power-kernel", "cache-timing",
      "dvfs-frequency", "sqmul-timing"};
  EXPECT_EQ(names, expected);
  for (const std::string& name : expected) {
    EXPECT_NE(ScenarioRegistry::built_in().find(name), nullptr) << name;
  }
}

TEST(ScenarioRegistry, FindUnknownReturnsNull) {
  EXPECT_EQ(ScenarioRegistry::built_in().find("no-such-scenario"), nullptr);
  EXPECT_EQ(ScenarioRegistry::built_in().find(""), nullptr);
}

TEST(ScenarioRegistry, DuplicateNameRegistrationRejected) {
  ScenarioRegistry registry;
  registry.add(make_cache_timing_scenario());
  EXPECT_THROW(registry.add(make_cache_timing_scenario()),
               std::invalid_argument);
  // The failed add must not have clobbered the original entry.
  EXPECT_EQ(registry.list().size(), 1u);
  EXPECT_NE(registry.find("cache-timing"), nullptr);
}

TEST(ScenarioRegistry, NullAndUnnamedScenariosRejected) {
  ScenarioRegistry registry;
  EXPECT_THROW(registry.add(nullptr), std::invalid_argument);
}

TEST(ScenarioRegistry, DescribeRoundTripsThroughParamParsing) {
  for (const std::string& name : ScenarioRegistry::built_in().list()) {
    const auto scenario = ScenarioRegistry::built_in().find(name);
    ASSERT_NE(scenario, nullptr);
    const ScenarioInfo info = describe(*scenario);
    EXPECT_EQ(info.name, name);
    EXPECT_FALSE(info.description.empty());
    EXPECT_FALSE(info.victim.empty());
    EXPECT_FALSE(info.channel.empty());
    EXPECT_FALSE(info.channels.empty());

    // Feeding the described defaults back through the parser must
    // reproduce the same parameter set, channels and analysis binding.
    std::vector<std::pair<std::string, std::string>> kv;
    for (const ParamSpec& spec : info.params) {
      kv.emplace_back(spec.name, spec.default_value);
    }
    const ParamSet reparsed = scenario->parse_params(kv);
    const ParamSet defaults = scenario->parse_params({});
    EXPECT_EQ(reparsed.entries(), defaults.entries()) << name;
    EXPECT_EQ(scenario->channels(reparsed), info.channels) << name;
    const AnalysisSpec analysis = scenario->analysis(reparsed);
    EXPECT_EQ(analysis.cpa, info.analysis.cpa) << name;
    EXPECT_EQ(analysis.cpa_keys, info.analysis.cpa_keys) << name;
    EXPECT_EQ(analysis.leakage_channels, info.analysis.leakage_channels)
        << name;
    EXPECT_EQ(analysis.default_traces_per_set,
              info.analysis.default_traces_per_set)
        << name;
  }
}

TEST(ScenarioRegistry, ParamParsingRejectsMalformedInput) {
  const auto scenario = ScenarioRegistry::built_in().find("cache-timing");
  ASSERT_NE(scenario, nullptr);
  // Unknown key.
  EXPECT_THROW(scenario->parse_params({{"no_such_param", "1"}}),
               std::invalid_argument);
  // Duplicate key.
  EXPECT_THROW(scenario->parse_params({{"lines", "8"}, {"lines", "9"}}),
               std::invalid_argument);
  // Values parse lazily: a non-numeric value for a numeric param fails at
  // conversion time.
  const ParamSet bad = scenario->parse_params({{"lines", "many"}});
  EXPECT_THROW(bad.get_size("lines"), std::invalid_argument);
  const ParamSet bad_flag = scenario->parse_params({{"leak", "yes"}});
  EXPECT_THROW(bad_flag.get_flag("leak"), std::invalid_argument);
  // And out-of-range scenario constraints surface from channels().
  const ParamSet too_many = scenario->parse_params({{"lines", "65"}});
  EXPECT_THROW(scenario->channels(too_many), std::invalid_argument);
}

TEST(ScenarioRegistry, ConcurrentListDescribeInstantiate) {
  constexpr int kThreads = 6;
  constexpr int kRounds = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      const ScenarioRegistry& registry = ScenarioRegistry::built_in();
      for (int round = 0; round < kRounds; ++round) {
        const std::vector<std::string> names = registry.list();
        ASSERT_EQ(names.size(), 5u);
        for (const std::string& name : names) {
          const auto scenario = registry.find(name);
          ASSERT_NE(scenario, nullptr);
          const ScenarioInfo info = describe(*scenario);
          ASSERT_EQ(info.name, name);
          const ParamSet defaults = scenario->parse_params({});
          aes::Block secret{};
          secret[0] = static_cast<std::uint8_t>(t);
          const auto source = scenario->make_source(
              defaults, secret, 1000 + static_cast<std::uint64_t>(t));
          ASSERT_NE(source, nullptr);
          ASSERT_EQ(source->keys(), info.channels);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
}

}  // namespace
}  // namespace psc::scenario
