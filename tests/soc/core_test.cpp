#include "soc/core.h"

#include <gtest/gtest.h>

#include <memory>

#include "util/rng.h"

namespace psc::soc {
namespace {

class CoreTest : public ::testing::Test {
 protected:
  CoreTest()
      : ladder_({1.0e9, 2.0e9, 3.0e9}, 0.6, 0.1),
        core_({.type = CoreType::performance,
               .ceff_farads = 0.3e-9,
               .static_power_w = 0.05},
              &ladder_) {}

  DvfsLadder ladder_;
  Core core_;
  util::Xoshiro256 rng_{11};
};

TEST_F(CoreTest, RejectsNullLadder) {
  EXPECT_THROW(Core({}, nullptr), std::invalid_argument);
}

TEST_F(CoreTest, StartsAtMaxState) {
  EXPECT_EQ(core_.effective_state(), 2u);
  EXPECT_DOUBLE_EQ(core_.frequency_hz(), 3.0e9);
}

TEST_F(CoreTest, RequestedStateClamped) {
  core_.request_state(99);
  EXPECT_EQ(core_.effective_state(), 2u);
  core_.request_state(1);
  EXPECT_EQ(core_.effective_state(), 1u);
  EXPECT_DOUBLE_EQ(core_.frequency_hz(), 2.0e9);
}

TEST_F(CoreTest, StateLimitWins) {
  core_.request_state(2);
  core_.set_state_limit(0);
  EXPECT_EQ(core_.effective_state(), 0u);
  EXPECT_DOUBLE_EQ(core_.frequency_hz(), 1.0e9);
  core_.set_state_limit(2);
  EXPECT_EQ(core_.effective_state(), 2u);
}

TEST_F(CoreTest, IdleEnergyMatchesFormula) {
  // idle intensity 0.04 at state 2: V = 0.9, f = 3 GHz.
  const CoreStep s = core_.step(1e-3, rng_);
  const double dyn = 0.3e-9 * 0.04 * 0.9 * 0.9 * 3.0e9;
  EXPECT_NEAR(s.core_energy_j, (dyn + 0.05) * 1e-3, 1e-12);
  EXPECT_DOUBLE_EQ(s.bus_energy_j, 0.0);
}

TEST_F(CoreTest, FmulEnergyMatchesFormula) {
  FmulStressor fmul;
  core_.assign(&fmul);
  const CoreStep s = core_.step(1e-3, rng_);
  const double dyn = 0.3e-9 * fmul.nominal_intensity() * 0.81 * 3.0e9;
  EXPECT_NEAR(s.core_energy_j, (dyn + 0.05) * 1e-3, 1e-12);
}

TEST_F(CoreTest, LowerFrequencyLowersEnergy) {
  FmulStressor fmul;
  core_.assign(&fmul);
  const double e_fast = core_.step(1e-3, rng_).core_energy_j;
  core_.request_state(0);
  const double e_slow = core_.step(1e-3, rng_).core_energy_j;
  EXPECT_LT(e_slow, e_fast);
}

TEST_F(CoreTest, EstimatedPowerMatchesNominalWorkload) {
  FmulStressor fmul;
  core_.assign(&fmul);
  const CoreStep s = core_.step(1e-3, rng_);
  EXPECT_NEAR(core_.estimated_power_w() * 1e-3, s.core_energy_j, 1e-12);
}

TEST_F(CoreTest, CyclesScaleWithFrequency) {
  const CoreStep fast = core_.step(1e-3, rng_);
  EXPECT_DOUBLE_EQ(fast.cycles, 3.0e6);
  core_.request_state(0);
  const CoreStep slow = core_.step(1e-3, rng_);
  EXPECT_DOUBLE_EQ(slow.cycles, 1.0e6);
}

TEST_F(CoreTest, TotalsAccumulate) {
  MatrixStressor matrix;
  core_.assign(&matrix);
  for (int i = 0; i < 10; ++i) {
    core_.step(1e-3, rng_);
  }
  EXPECT_DOUBLE_EQ(core_.total_cycles(), 30.0e6);
  EXPECT_GT(core_.total_items(), 0u);
}

TEST_F(CoreTest, AssignNullIsIdle) {
  FmulStressor fmul;
  core_.assign(&fmul);
  EXPECT_FALSE(core_.is_idle());
  core_.assign(nullptr);
  EXPECT_TRUE(core_.is_idle());
}

}  // namespace
}  // namespace psc::soc
