#include "soc/dvfs.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace psc::soc {
namespace {

DvfsLadder small_ladder() {
  return DvfsLadder({1.0e9, 2.0e9, 3.0e9}, 0.6, 0.1);
}

TEST(DvfsLadder, RejectsEmpty) {
  EXPECT_THROW(DvfsLadder({}, 0.6, 0.1), std::invalid_argument);
}

TEST(DvfsLadder, RejectsUnsorted) {
  EXPECT_THROW(DvfsLadder({2.0e9, 1.0e9}, 0.6, 0.1), std::invalid_argument);
}

TEST(DvfsLadder, RejectsDuplicates) {
  EXPECT_THROW(DvfsLadder({1.0e9, 1.0e9}, 0.6, 0.1), std::invalid_argument);
}

TEST(DvfsLadder, RejectsNonPositive) {
  EXPECT_THROW(DvfsLadder({0.0, 1.0e9}, 0.6, 0.1), std::invalid_argument);
}

TEST(DvfsLadder, StateAccess) {
  const DvfsLadder ladder = small_ladder();
  EXPECT_EQ(ladder.state_count(), 3u);
  EXPECT_EQ(ladder.max_state(), 2u);
  EXPECT_DOUBLE_EQ(ladder.frequency_hz(0), 1.0e9);
  EXPECT_DOUBLE_EQ(ladder.frequency_hz(2), 3.0e9);
  EXPECT_DOUBLE_EQ(ladder.min_frequency_hz(), 1.0e9);
  EXPECT_DOUBLE_EQ(ladder.max_frequency_hz(), 3.0e9);
  EXPECT_THROW(ladder.frequency_hz(3), std::out_of_range);
}

TEST(DvfsLadder, AffineVoltage) {
  const DvfsLadder ladder = small_ladder();
  EXPECT_DOUBLE_EQ(ladder.voltage(0), 0.6 + 0.1 * 1.0);
  EXPECT_DOUBLE_EQ(ladder.voltage(2), 0.6 + 0.1 * 3.0);
}

TEST(DvfsLadder, VoltageMonotonic) {
  const DvfsLadder ladder = small_ladder();
  for (std::size_t s = 1; s < ladder.state_count(); ++s) {
    EXPECT_GT(ladder.voltage(s), ladder.voltage(s - 1));
  }
}

TEST(DvfsLadder, StateAtOrBelow) {
  const DvfsLadder ladder = small_ladder();
  EXPECT_EQ(ladder.state_at_or_below(3.5e9), 2u);
  EXPECT_EQ(ladder.state_at_or_below(3.0e9), 2u);
  EXPECT_EQ(ladder.state_at_or_below(2.9e9), 1u);
  EXPECT_EQ(ladder.state_at_or_below(1.0e9), 0u);
  // Below the lowest state: clamps to state 0.
  EXPECT_EQ(ladder.state_at_or_below(0.5e9), 0u);
}

TEST(DvfsLadder, M2LadderContainsLowpowerPoint) {
  // The M2 lowpowermode ceiling (1.968 GHz) must be an exact ladder point
  // so the governor cap lands on it.
  const std::vector<double> freqs = {660e6, 912e6, 1284e6, 1752e6, 1968e6,
                                     2208e6};
  const DvfsLadder ladder(freqs, 0.65, 0.125);
  EXPECT_DOUBLE_EQ(ladder.frequency_hz(ladder.state_at_or_below(1.968e9)),
                   1.968e9);
}

}  // namespace
}  // namespace psc::soc
