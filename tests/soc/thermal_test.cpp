#include "soc/thermal.h"

#include <gtest/gtest.h>

#include <cmath>

namespace psc::soc {
namespace {

ThermalConfig config() {
  return {.ambient_c = 25.0, .r_thermal_c_per_w = 5.0, .tau_s = 10.0};
}

TEST(ThermalModel, StartsAtAmbient) {
  ThermalModel t(config());
  EXPECT_DOUBLE_EQ(t.temperature_c(), 25.0);
}

TEST(ThermalModel, SteadyStateFormula) {
  ThermalModel t(config());
  EXPECT_DOUBLE_EQ(t.steady_state_c(10.0), 75.0);
  EXPECT_DOUBLE_EQ(t.steady_state_c(0.0), 25.0);
}

TEST(ThermalModel, ConvergesToSteadyState) {
  ThermalModel t(config());
  for (int i = 0; i < 100000; ++i) {
    t.step(10.0, 1e-2);
  }
  EXPECT_NEAR(t.temperature_c(), 75.0, 0.01);
}

TEST(ThermalModel, MonotonicApproachFromBelow) {
  ThermalModel t(config());
  double prev = t.temperature_c();
  for (int i = 0; i < 1000; ++i) {
    t.step(10.0, 1e-2);
    EXPECT_GE(t.temperature_c(), prev);
    EXPECT_LE(t.temperature_c(), 75.0 + 1e-9);
    prev = t.temperature_c();
  }
}

TEST(ThermalModel, CoolsWhenPowerRemoved) {
  ThermalModel t(config());
  for (int i = 0; i < 10000; ++i) {
    t.step(10.0, 1e-2);
  }
  const double hot = t.temperature_c();
  for (int i = 0; i < 1000; ++i) {
    t.step(0.0, 1e-2);
  }
  EXPECT_LT(t.temperature_c(), hot);
}

TEST(ThermalModel, StableForLargeSteps) {
  // The exponential update must not overshoot even with dt >> tau.
  ThermalModel t(config());
  t.step(10.0, 1000.0);
  EXPECT_NEAR(t.temperature_c(), 75.0, 1e-6);
  t.step(10.0, 1000.0);
  EXPECT_NEAR(t.temperature_c(), 75.0, 1e-6);
}

TEST(ThermalModel, TimeConstantGovernsRate) {
  // After exactly tau seconds at constant power, the gap closes by 1-1/e.
  ThermalModel t(config());
  const int steps = 1000;
  const double dt = config().tau_s / steps;
  for (int i = 0; i < steps; ++i) {
    t.step(10.0, dt);
  }
  const double expected = 25.0 + 50.0 * (1.0 - std::exp(-1.0));
  EXPECT_NEAR(t.temperature_c(), expected, 0.05);
}

TEST(ThermalModel, Reset) {
  ThermalModel t(config());
  t.step(20.0, 100.0);
  EXPECT_GT(t.temperature_c(), 25.0);
  t.reset();
  EXPECT_DOUBLE_EQ(t.temperature_c(), 25.0);
}

TEST(ThermalModel, MorePowerMeansHotter) {
  ThermalModel a(config());
  ThermalModel b(config());
  for (int i = 0; i < 500; ++i) {
    a.step(5.0, 0.05);
    b.step(15.0, 0.05);
  }
  EXPECT_LT(a.temperature_c(), b.temperature_c());
}

}  // namespace
}  // namespace psc::soc
