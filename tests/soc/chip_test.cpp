#include "soc/chip.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "soc/workload.h"
#include "util/rng.h"

namespace psc::soc {
namespace {

aes::Block random_block(util::Xoshiro256& rng) {
  aes::Block b;
  rng.fill_bytes(b);
  return b;
}

TEST(Chip, Topology) {
  Chip chip(DeviceProfile::macbook_air_m2(), 1);
  EXPECT_EQ(chip.p_core_count(), 4u);
  EXPECT_EQ(chip.e_core_count(), 4u);
  EXPECT_EQ(chip.core_count(), 8u);
  EXPECT_EQ(chip.p_core(0).type(), CoreType::performance);
  EXPECT_EQ(chip.e_core(0).type(), CoreType::efficiency);
}

TEST(Chip, RejectsBadDt) {
  Chip chip(DeviceProfile::macbook_air_m2(), 1);
  EXPECT_THROW(chip.advance(0.0), std::invalid_argument);
  EXPECT_THROW(chip.advance(-1.0), std::invalid_argument);
}

TEST(Chip, TimeAdvances) {
  Chip chip(DeviceProfile::macbook_air_m2(), 1);
  chip.run_for(0.1);
  EXPECT_NEAR(chip.time_s(), 0.1, 1e-9);
}

TEST(Chip, IdlePowerIsLow) {
  Chip chip(DeviceProfile::macbook_air_m2(), 1);
  chip.run_for(0.05);
  const double total = chip.rail_powers().at(RailId::total_soc);
  EXPECT_GT(total, 0.2);
  EXPECT_LT(total, 2.5);
}

TEST(Chip, StressRaisesPower) {
  // The Table 2 triage premise: idle vs all-core matrix stress shows a
  // large power difference.
  Chip chip(DeviceProfile::macbook_air_m2(), 1);
  chip.run_for(0.05);
  const double idle = chip.rail_powers().at(RailId::total_soc);

  std::vector<std::unique_ptr<MatrixStressor>> stressors;
  for (std::size_t c = 0; c < chip.core_count(); ++c) {
    stressors.push_back(std::make_unique<MatrixStressor>());
    chip.core(c).assign(stressors.back().get());
  }
  chip.run_for(0.05);
  const double busy = chip.rail_powers().at(RailId::total_soc);
  EXPECT_GT(busy, 4.0 * idle);
}

TEST(Chip, RailDecomposition) {
  Chip chip(DeviceProfile::macbook_air_m2(), 1);
  chip.run_for(0.01);
  const RailPowers& p = chip.rail_powers();
  const double parts = p.at(RailId::p_cluster) + p.at(RailId::e_cluster) +
                       p.at(RailId::uncore) + p.at(RailId::dram);
  EXPECT_NEAR(p.at(RailId::total_soc), parts, 1e-9);
  EXPECT_NEAR(p.at(RailId::dc_in), parts / 0.9, 1e-9);
}

TEST(Chip, EnergyIsIntegralOfPower) {
  Chip chip(DeviceProfile::macbook_air_m2(), 1);
  FmulStressor fmul;
  chip.p_core(0).assign(&fmul);
  double integral = 0.0;
  for (int i = 0; i < 200; ++i) {
    chip.advance(1e-3);
    integral += chip.rail_powers().at(RailId::total_soc) * 1e-3;
  }
  EXPECT_NEAR(chip.rail_energies().at(RailId::total_soc), integral, 1e-9);
}

TEST(Chip, EstimateTracksDataIndependentLoad) {
  // For fmul (nominal intensity == actual), estimated equals measured
  // package power minus the dc conversion (estimate is package-level).
  Chip chip(DeviceProfile::macbook_air_m2(), 1);
  std::vector<std::unique_ptr<FmulStressor>> loads;
  for (std::size_t c = 0; c < chip.core_count(); ++c) {
    loads.push_back(std::make_unique<FmulStressor>());
    chip.core(c).assign(loads.back().get());
  }
  chip.run_for(0.05);
  EXPECT_NEAR(chip.estimated_package_power_w(),
              chip.rail_powers().at(RailId::total_soc), 1e-6);
}

TEST(Chip, DataLeakageMovesMeasuredNotEstimated) {
  const DeviceProfile profile = DeviceProfile::macbook_air_m2();
  Chip chip(profile, 1);
  util::Xoshiro256 rng(5);
  AesWorkload aes_work(random_block(rng), profile.leakage,
                       profile.aes_cycles_per_block);
  chip.p_core(0).assign(&aes_work);

  aes::Block zeros{};
  aes::Block ones;
  ones.fill(0xff);

  aes_work.set_plaintext(zeros);
  chip.run_for(0.02);
  const double measured_zeros = chip.rail_powers().at(RailId::p_cluster);
  const double estimated_zeros = chip.estimated_package_power_w();

  aes_work.set_plaintext(ones);
  chip.run_for(0.02);
  const double measured_ones = chip.rail_powers().at(RailId::p_cluster);
  const double estimated_ones = chip.estimated_package_power_w();

  // Measured P-cluster power differs (uW scale); the utilization estimate
  // is bit-for-bit identical.
  EXPECT_NE(measured_zeros, measured_ones);
  EXPECT_DOUBLE_EQ(estimated_zeros, estimated_ones);
}

TEST(Chip, M2LowpowerAesOperatingPoint) {
  // Section 4 calibration: 4 AES threads on the P-cores in lowpowermode
  // draw ~2.8 W of package power at the 1.968 GHz ceiling.
  const DeviceProfile profile = DeviceProfile::macbook_air_m2();
  Chip chip(profile, 2);
  chip.set_lowpowermode(true);
  util::Xoshiro256 rng(6);
  std::vector<std::unique_ptr<AesWorkload>> threads;
  for (std::size_t i = 0; i < 4; ++i) {
    threads.push_back(std::make_unique<AesWorkload>(
        random_block(rng), profile.leakage, profile.aes_cycles_per_block));
    chip.p_core(i).assign(threads.back().get());
  }
  chip.run_for(0.5);
  EXPECT_NEAR(chip.rail_powers().at(RailId::total_soc), 2.8, 0.3);
  EXPECT_DOUBLE_EQ(chip.p_core(0).frequency_hz(), 1.968e9);
  EXPECT_FALSE(chip.governor().throttling());
}

TEST(Chip, M2LowpowerAesPlusStressorThrottles) {
  // Section 4: adding fmul stressors on the E-cores pushes the package
  // past 4 W; the governor throttles the P-cluster below 1.968 GHz while
  // the E-cores keep running at 2.424 GHz.
  const DeviceProfile profile = DeviceProfile::macbook_air_m2();
  Chip chip(profile, 3);
  chip.set_lowpowermode(true);
  util::Xoshiro256 rng(7);
  std::vector<std::unique_ptr<AesWorkload>> aes_threads;
  std::vector<std::unique_ptr<FmulStressor>> stressors;
  for (std::size_t i = 0; i < 4; ++i) {
    aes_threads.push_back(std::make_unique<AesWorkload>(
        random_block(rng), profile.leakage, profile.aes_cycles_per_block));
    chip.p_core(i).assign(aes_threads.back().get());
    stressors.push_back(std::make_unique<FmulStressor>());
    chip.e_core(i).assign(stressors.back().get());
  }
  chip.run_for(1.0);
  EXPECT_TRUE(chip.governor().power_throttling());
  EXPECT_LT(chip.p_core(0).frequency_hz(), 1.968e9);
  EXPECT_DOUBLE_EQ(chip.e_core(0).frequency_hz(), 2.424e9);
  // Power settles at or below the 4 W budget.
  EXPECT_LT(chip.estimated_package_power_w(), 4.3);
}

TEST(Chip, M2SustainedStressTripsThermalBeforePowerLimit) {
  // Section 4: in default mode the MacBook Air reaches its thermal limit
  // under sustained all-core load; no power throttling exists there.
  const DeviceProfile profile = DeviceProfile::macbook_air_m2();
  Chip chip(profile, 4);
  std::vector<std::unique_ptr<MatrixStressor>> stressors;
  for (std::size_t c = 0; c < chip.core_count(); ++c) {
    stressors.push_back(std::make_unique<MatrixStressor>());
    chip.core(c).assign(stressors.back().get());
  }
  // Long sustained stress (coarse steps keep the test fast). The governor
  // oscillates around the trip point, so track whether throttling ever
  // engaged rather than sampling the final instant.
  bool ever_thermal = false;
  bool ever_power = false;
  double max_temp = 0.0;
  for (int i = 0; i < 3000; ++i) {
    chip.advance(0.05);
    ever_thermal = ever_thermal || chip.governor().thermal_throttling();
    ever_power = ever_power || chip.governor().power_throttling();
    max_temp = std::max(max_temp, chip.temperature_c());
  }
  EXPECT_TRUE(ever_thermal);
  EXPECT_FALSE(ever_power);
  EXPECT_GE(max_temp, profile.governor.thermal_limit_c);
}

TEST(Chip, M1MiniStaysCoolUnderStress) {
  // The Mac Mini's active cooling keeps it below the trip point under the
  // same load.
  const DeviceProfile profile = DeviceProfile::mac_mini_m1();
  Chip chip(profile, 5);
  std::vector<std::unique_ptr<MatrixStressor>> stressors;
  for (std::size_t c = 0; c < chip.core_count(); ++c) {
    stressors.push_back(std::make_unique<MatrixStressor>());
    chip.core(c).assign(stressors.back().get());
  }
  for (int i = 0; i < 3000; ++i) {
    chip.advance(0.05);
  }
  EXPECT_FALSE(chip.governor().thermal_throttling());
}

TEST(Chip, EstimatedClusterEnergyAccumulates) {
  Chip chip(DeviceProfile::macbook_air_m2(), 6);
  FmulStressor fmul;
  chip.p_core(0).assign(&fmul);
  chip.run_for(0.1);
  const double p_energy = chip.estimated_cluster_energy_j(
      CoreType::performance);
  const double e_energy = chip.estimated_cluster_energy_j(
      CoreType::efficiency);
  EXPECT_GT(p_energy, 0.0);
  EXPECT_GT(e_energy, 0.0);   // idle estimate is nonzero
  EXPECT_GT(p_energy, e_energy);
}

}  // namespace
}  // namespace psc::soc
