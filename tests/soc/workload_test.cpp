#include "soc/workload.h"

#include <gtest/gtest.h>

#include "aes/aes128.h"
#include "power/leakage_model.h"
#include "util/rng.h"

namespace psc::soc {
namespace {

aes::Block random_block(util::Xoshiro256& rng) {
  aes::Block b;
  rng.fill_bytes(b);
  return b;
}

TEST(IdleWorkload, NoDataEnergy) {
  IdleWorkload w;
  util::Xoshiro256 rng(1);
  const WorkStep s = w.run(1e6, rng);
  EXPECT_DOUBLE_EQ(s.core_extra_energy_j, 0.0);
  EXPECT_DOUBLE_EQ(s.bus_extra_energy_j, 0.0);
  EXPECT_DOUBLE_EQ(s.cycles, 1e6);
  EXPECT_LT(s.intensity, 0.1);
}

TEST(MatrixStressor, HighestIntensity) {
  MatrixStressor matrix;
  FmulStressor fmul;
  IdleWorkload idle;
  EXPECT_GT(matrix.nominal_intensity(), fmul.nominal_intensity());
  EXPECT_GT(fmul.nominal_intensity(), idle.nominal_intensity());
}

TEST(FmulStressor, DataIndependentByConstruction) {
  FmulStressor w;
  util::Xoshiro256 rng(2);
  for (int i = 0; i < 10; ++i) {
    const WorkStep s = w.run(12345.0, rng);
    EXPECT_DOUBLE_EQ(s.core_extra_energy_j, 0.0);
    EXPECT_DOUBLE_EQ(s.bus_extra_energy_j, 0.0);
    EXPECT_DOUBLE_EQ(s.intensity, w.nominal_intensity());
  }
}

class AesWorkloadTest : public ::testing::Test {
 protected:
  util::Xoshiro256 rng_{3};
  power::LeakageConfig leakage_ = power::LeakageConfig::apple_silicon_default();
};

TEST_F(AesWorkloadTest, CountsBlocks) {
  AesWorkload w(random_block(rng_), leakage_, /*cycles_per_block=*/100.0);
  const WorkStep s = w.run(1000.0, rng_);
  EXPECT_EQ(s.items_completed, 10u);
  EXPECT_EQ(w.blocks_encrypted(), 10u);
}

TEST_F(AesWorkloadTest, CarriesFractionalCycles) {
  AesWorkload w(random_block(rng_), leakage_, 100.0);
  std::uint64_t total = 0;
  for (int i = 0; i < 10; ++i) {
    total += w.run(150.0, rng_).items_completed;
  }
  // 1500 cycles at 100 cycles/block = 15 blocks, no loss to rounding.
  EXPECT_EQ(total, 15u);
}

TEST_F(AesWorkloadTest, DutyCycleScalesThroughput) {
  AesWorkload full(random_block(rng_), leakage_, 100.0, 1.0);
  AesWorkload half(random_block(rng_), leakage_, 100.0, 0.5);
  const std::uint64_t full_blocks = full.run(100000.0, rng_).items_completed;
  const std::uint64_t half_blocks = half.run(100000.0, rng_).items_completed;
  EXPECT_EQ(full_blocks, 1000u);
  EXPECT_EQ(half_blocks, 500u);
}

TEST_F(AesWorkloadTest, CiphertextMatchesReferenceCipher) {
  const aes::Block key = random_block(rng_);
  const aes::Block pt = random_block(rng_);
  AesWorkload w(key, leakage_);
  w.set_plaintext(pt);
  aes::Aes128 reference(key);
  EXPECT_EQ(w.ciphertext(), reference.encrypt(pt));
}

TEST_F(AesWorkloadTest, LeakageEnergyMatchesEvaluator) {
  const aes::Block key = random_block(rng_);
  const aes::Block pt = random_block(rng_);
  AesWorkload w(key, leakage_, 100.0);
  w.set_plaintext(pt);

  aes::Aes128 reference(key);
  aes::RoundTrace trace;
  const aes::Block ct = reference.encrypt_trace(pt, trace);
  power::LeakageEvaluator eval(leakage_);
  EXPECT_DOUBLE_EQ(w.core_leak_energy_per_block(),
                   eval.energy_deviation(pt, trace));
  EXPECT_DOUBLE_EQ(w.bus_leak_energy_per_block(),
                   eval.bus_energy_deviation(pt, ct));

  // 10 blocks leak 10x the per-block deviation.
  const WorkStep s = w.run(1000.0, rng_);
  EXPECT_NEAR(s.core_extra_energy_j,
              10.0 * eval.energy_deviation(pt, trace), 1e-24);
}

TEST_F(AesWorkloadTest, PlaintextChangeChangesLeakage) {
  AesWorkload w(random_block(rng_), leakage_);
  w.set_plaintext(random_block(rng_));
  const double first = w.core_leak_energy_per_block();
  aes::Block other = w.plaintext();
  other[3] ^= 0xff;
  w.set_plaintext(other);
  EXPECT_NE(w.core_leak_energy_per_block(), first);
}

TEST_F(AesWorkloadTest, RekeyChangesCiphertext) {
  const aes::Block pt = random_block(rng_);
  AesWorkload w(random_block(rng_), leakage_);
  w.set_plaintext(pt);
  const aes::Block before = w.ciphertext();
  w.set_key(random_block(rng_));
  EXPECT_NE(w.ciphertext(), before);
  EXPECT_EQ(w.plaintext(), pt);
}

TEST_F(AesWorkloadTest, IntensityBlendsWithDutyCycle) {
  AesWorkload full(random_block(rng_), leakage_, 100.0, 1.0);
  AesWorkload half(random_block(rng_), leakage_, 100.0, 0.5);
  const double full_intensity = full.run(100.0, rng_).intensity;
  const double half_intensity = half.run(100.0, rng_).intensity;
  EXPECT_DOUBLE_EQ(full_intensity, full.nominal_intensity());
  EXPECT_LT(half_intensity, full_intensity);
}

}  // namespace
}  // namespace psc::soc
