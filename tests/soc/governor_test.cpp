#include "soc/governor.h"

#include <gtest/gtest.h>

namespace psc::soc {
namespace {

class GovernorTest : public ::testing::Test {
 protected:
  GovernorTest()
      : ladder_({1.0e9, 1.5e9, 1.968e9, 2.5e9, 3.0e9, 3.5e9}, 0.65, 0.125),
        governor_({.thermal_limit_c = 95.0,
                   .thermal_hysteresis_c = 3.0,
                   .lowpower_cap_w = 4.0,
                   .lowpower_cap_margin_w = 0.25,
                   .lowpower_max_p_freq_hz = 1.968e9,
                   .decision_period_s = 0.010},
                  ladder_) {}

  // Runs `n` decision periods with fixed inputs.
  void run_decisions(int n, double est_power_w, double temp_c) {
    for (int i = 0; i < n; ++i) {
      governor_.update(est_power_w, temp_c, 0.010);
    }
  }

  DvfsLadder ladder_;
  Governor governor_;
};

TEST_F(GovernorTest, StartsUnthrottledAtMax) {
  EXPECT_EQ(governor_.p_state_limit(), 5u);
  EXPECT_FALSE(governor_.throttling());
}

TEST_F(GovernorTest, LowpowermodeCapsFrequency) {
  governor_.set_lowpowermode(true);
  run_decisions(1, 1.0, 30.0);
  EXPECT_DOUBLE_EQ(ladder_.frequency_hz(governor_.p_state_limit()), 1.968e9);
}

TEST_F(GovernorTest, LowpowermodeOffRestoresMax) {
  governor_.set_lowpowermode(true);
  run_decisions(5, 1.0, 30.0);
  governor_.set_lowpowermode(false);
  run_decisions(10, 1.0, 30.0);
  EXPECT_EQ(governor_.p_state_limit(), 5u);
}

TEST_F(GovernorTest, PowerCapThrottlesInLowpowermode) {
  governor_.set_lowpowermode(true);
  run_decisions(3, 4.5, 30.0);
  EXPECT_TRUE(governor_.power_throttling());
  EXPECT_LT(ladder_.frequency_hz(governor_.p_state_limit()), 1.968e9);
}

TEST_F(GovernorTest, PowerCapIgnoredInNormalMode) {
  run_decisions(10, 10.0, 30.0);
  EXPECT_FALSE(governor_.power_throttling());
  EXPECT_EQ(governor_.p_state_limit(), 5u);
}

TEST_F(GovernorTest, RecoversWhenPowerDrops) {
  governor_.set_lowpowermode(true);
  run_decisions(3, 4.5, 30.0);
  const std::size_t throttled = governor_.p_state_limit();
  EXPECT_LT(throttled, 2u + 1u);
  run_decisions(10, 2.0, 30.0);
  EXPECT_DOUBLE_EQ(ladder_.frequency_hz(governor_.p_state_limit()), 1.968e9);
  EXPECT_FALSE(governor_.power_throttling());
}

TEST_F(GovernorTest, HoldsInsideMarginBand) {
  governor_.set_lowpowermode(true);
  run_decisions(2, 4.5, 30.0);
  const std::size_t limit = governor_.p_state_limit();
  // Between cap-margin and cap: no change either way.
  run_decisions(10, 3.9, 30.0);
  EXPECT_EQ(governor_.p_state_limit(), limit);
}

TEST_F(GovernorTest, ThermalLimitThrottlesInAnyMode) {
  run_decisions(2, 1.0, 96.0);
  EXPECT_TRUE(governor_.thermal_throttling());
  EXPECT_LT(governor_.p_state_limit(), 5u);
}

TEST_F(GovernorTest, ThermalHysteresisHolds) {
  run_decisions(2, 1.0, 96.0);
  const std::size_t limit = governor_.p_state_limit();
  // Cooled below the limit but inside hysteresis: hold.
  run_decisions(5, 1.0, 93.5);
  EXPECT_EQ(governor_.p_state_limit(), limit);
  EXPECT_TRUE(governor_.thermal_throttling());
  // Cooled below limit - hysteresis: recover.
  run_decisions(10, 1.0, 80.0);
  EXPECT_FALSE(governor_.thermal_throttling());
  EXPECT_EQ(governor_.p_state_limit(), 5u);
}

TEST_F(GovernorTest, DecisionPeriodRateLimits) {
  governor_.set_lowpowermode(true);
  // 5 ms of 1 ms steps: less than one decision period, no action yet.
  for (int i = 0; i < 5; ++i) {
    governor_.update(10.0, 30.0, 0.001);
  }
  EXPECT_FALSE(governor_.power_throttling());
  // Completing the period triggers the decision.
  for (int i = 0; i < 6; ++i) {
    governor_.update(10.0, 30.0, 0.001);
  }
  EXPECT_TRUE(governor_.power_throttling());
}

TEST_F(GovernorTest, ThrottleFloorsAtStateZero) {
  governor_.set_lowpowermode(true);
  run_decisions(50, 10.0, 30.0);
  EXPECT_EQ(governor_.p_state_limit(), 0u);
}

}  // namespace
}  // namespace psc::soc
