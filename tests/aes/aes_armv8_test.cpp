#include "aes/aes_armv8.h"

#include <gtest/gtest.h>

#include "util/hex.h"
#include "util/rng.h"

namespace psc::aes {
namespace {

Block block_from_hex(const char* hex) {
  Block b{};
  EXPECT_TRUE(util::from_hex_exact(hex, b));
  return b;
}

TEST(AesArmv8, AeseSemantics) {
  // AESE = ShiftRows(SubBytes(state ^ key)); verify against primitives.
  Block state = block_from_hex("00112233445566778899aabbccddeeff");
  const Block key = block_from_hex("000102030405060708090a0b0c0d0e0f");
  Block expected = state;
  add_round_key(expected, key);
  sub_bytes(expected);
  shift_rows(expected);
  EXPECT_EQ(aese(state, key), expected);
}

TEST(AesArmv8, AesmcSemantics) {
  Block state = block_from_hex("6353e08c0960e104cd70b751bacad0e7");
  Block expected = state;
  mix_columns(expected);
  EXPECT_EQ(aesmc(state), expected);
}

TEST(AesArmv8, MatchesFips197Vector) {
  const Block key = block_from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Block pt = block_from_hex("3243f6a8885a308d313198a2e0370734");
  const Block expected = block_from_hex("3925841d02dc09fbdc118597196a0b32");
  Aes128Armv8 cipher(key);
  EXPECT_EQ(cipher.encrypt(pt), expected);
}

TEST(AesArmv8, InstructionTraceEndsWithCiphertext) {
  const Block key = block_from_hex("000102030405060708090a0b0c0d0e0f");
  const Block pt = block_from_hex("00112233445566778899aabbccddeeff");
  Aes128Armv8 cipher(key);
  Armv8InstructionTrace trace;
  const Block ct = cipher.encrypt_trace(pt, trace);
  EXPECT_EQ(trace.values[Armv8InstructionTrace::instruction_count - 1], ct);
}

TEST(AesArmv8, InstructionTraceFirstValue) {
  const Block key = block_from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Block pt = block_from_hex("3243f6a8885a308d313198a2e0370734");
  Aes128Armv8 cipher(key);
  Armv8InstructionTrace trace;
  cipher.encrypt_trace(pt, trace);
  EXPECT_EQ(trace.values[0], aese(pt, key));
}

TEST(AesArmv8, InstructionTraceAlternatesAeseAesmc) {
  const Block key = block_from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Block pt = block_from_hex("3243f6a8885a308d313198a2e0370734");
  Aes128Armv8 cipher(key);
  Armv8InstructionTrace trace;
  cipher.encrypt_trace(pt, trace);
  // Each AESMC output equals MixColumns of the preceding AESE output.
  for (std::size_t r = 0; r + 1 < num_rounds; ++r) {
    EXPECT_EQ(trace.values[2 * r + 1], aesmc(trace.values[2 * r]));
  }
}

class Armv8Equivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Armv8Equivalence, MatchesReferenceCipher) {
  util::Xoshiro256 rng(GetParam());
  Block key;
  Block pt;
  rng.fill_bytes(key);
  rng.fill_bytes(pt);
  Aes128 reference(key);
  Aes128Armv8 armv8(key);
  EXPECT_EQ(armv8.encrypt(pt), reference.encrypt(pt));
}

TEST_P(Armv8Equivalence, TraceConsistentWithReferenceStates) {
  util::Xoshiro256 rng(GetParam() + 500);
  Block key;
  Block pt;
  rng.fill_bytes(key);
  rng.fill_bytes(pt);
  Aes128 reference(key);
  Aes128Armv8 armv8(key);
  RoundTrace ref_trace;
  Armv8InstructionTrace arm_trace;
  reference.encrypt_trace(pt, ref_trace);
  armv8.encrypt_trace(pt, arm_trace);
  // AESMC output of round r equals the reference state just before
  // AddRoundKey of round r+1; XORing the round key gives post_ark[r+1].
  for (std::size_t r = 0; r + 1 < num_rounds; ++r) {
    Block expected = arm_trace.values[2 * r + 1];
    add_round_key(expected, reference.round_keys()[r + 1]);
    EXPECT_EQ(expected, ref_trace.post_add_round_key[r + 1]);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInputs, Armv8Equivalence,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace psc::aes
