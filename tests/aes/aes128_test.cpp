#include "aes/aes128.h"

#include <gtest/gtest.h>

#include "aes/sbox.h"
#include "util/hex.h"
#include "util/rng.h"

namespace psc::aes {
namespace {

Block block_from_hex(const char* hex) {
  Block b{};
  EXPECT_TRUE(util::from_hex_exact(hex, b));
  return b;
}

TEST(Aes128, Fips197AppendixBVector) {
  const Block key = block_from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Block pt = block_from_hex("3243f6a8885a308d313198a2e0370734");
  const Block expected = block_from_hex("3925841d02dc09fbdc118597196a0b32");
  Aes128 cipher(key);
  EXPECT_EQ(cipher.encrypt(pt), expected);
}

TEST(Aes128, Fips197AppendixC1Vector) {
  const Block key = block_from_hex("000102030405060708090a0b0c0d0e0f");
  const Block pt = block_from_hex("00112233445566778899aabbccddeeff");
  const Block expected = block_from_hex("69c4e0d86a7b0430d8cdb78070b4c55a");
  Aes128 cipher(key);
  EXPECT_EQ(cipher.encrypt(pt), expected);
  EXPECT_EQ(cipher.decrypt(expected), pt);
}

TEST(Aes128, KeyScheduleMatchesFips197) {
  // FIPS-197 appendix A.1 key expansion for 2b7e1516...
  const Block key = block_from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const auto keys = Aes128::expand_key(key);
  EXPECT_EQ(keys[0], key);
  EXPECT_EQ(keys[1], block_from_hex("a0fafe1788542cb123a339392a6c7605"));
  EXPECT_EQ(keys[2], block_from_hex("f2c295f27a96b9435935807a7359f67f"));
  EXPECT_EQ(keys[10], block_from_hex("d014f9a8c9ee2589e13f0cc8b6630ca6"));
}

TEST(Aes128, MasterKeyFromRound10MatchesForward) {
  const Block key = block_from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const auto keys = Aes128::expand_key(key);
  EXPECT_EQ(Aes128::master_key_from_round10(keys[10]), key);
}

TEST(Aes128, DecryptInvertsEncrypt) {
  const Block key = block_from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Block pt = block_from_hex("3243f6a8885a308d313198a2e0370734");
  Aes128 cipher(key);
  EXPECT_EQ(cipher.decrypt(cipher.encrypt(pt)), pt);
}

TEST(Aes128, TraceMatchesPlainEncrypt) {
  const Block key = block_from_hex("000102030405060708090a0b0c0d0e0f");
  const Block pt = block_from_hex("00112233445566778899aabbccddeeff");
  Aes128 cipher(key);
  RoundTrace trace;
  const Block ct = cipher.encrypt_trace(pt, trace);
  EXPECT_EQ(ct, cipher.encrypt(pt));
  EXPECT_EQ(trace.post_add_round_key[num_rounds], ct);
}

TEST(Aes128, TraceRound0IsWhitenedPlaintext) {
  const Block key = block_from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Block pt = block_from_hex("3243f6a8885a308d313198a2e0370734");
  Aes128 cipher(key);
  RoundTrace trace;
  cipher.encrypt_trace(pt, trace);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(trace.post_add_round_key[0][i],
              static_cast<std::uint8_t>(pt[i] ^ key[i]));
  }
}

TEST(Aes128, TraceSubBytesConsistent) {
  const Block key = block_from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Block pt = block_from_hex("3243f6a8885a308d313198a2e0370734");
  Aes128 cipher(key);
  RoundTrace trace;
  cipher.encrypt_trace(pt, trace);
  // post_sub_bytes[0] is SubBytes applied to post_add_round_key[0].
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(trace.post_sub_bytes[0][i], sbox[trace.post_add_round_key[0][i]]);
  }
}

TEST(Aes128, TraceFirstRoundMatchesFips197) {
  // FIPS-197 appendix B: state after round 1 is a49c7ff2689f352b6b5bea43026a5049.
  const Block key = block_from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Block pt = block_from_hex("3243f6a8885a308d313198a2e0370734");
  Aes128 cipher(key);
  RoundTrace trace;
  cipher.encrypt_trace(pt, trace);
  EXPECT_EQ(trace.post_add_round_key[1],
            block_from_hex("a49c7ff2689f352b6b5bea43026a5049"));
}

TEST(Aes128, LastRoundStructure) {
  // ct = ShiftRows(SubBytes(s9)) ^ rk10, where s9 = post_add_round_key[9].
  const Block key = block_from_hex("000102030405060708090a0b0c0d0e0f");
  const Block pt = block_from_hex("00112233445566778899aabbccddeeff");
  Aes128 cipher(key);
  RoundTrace trace;
  const Block ct = cipher.encrypt_trace(pt, trace);
  Block s = trace.post_add_round_key[9];
  sub_bytes(s);
  shift_rows(s);
  add_round_key(s, cipher.round_keys()[10]);
  EXPECT_EQ(s, ct);
}

TEST(RoundPrimitives, ShiftRowsRoundTrip) {
  Block state;
  for (std::size_t i = 0; i < 16; ++i) {
    state[i] = static_cast<std::uint8_t>(i * 17 + 3);
  }
  Block copy = state;
  shift_rows(copy);
  inv_shift_rows(copy);
  EXPECT_EQ(copy, state);
}

TEST(RoundPrimitives, ShiftRowsMovesRowsNotRow0) {
  Block state{};
  for (std::size_t i = 0; i < 16; ++i) {
    state[i] = static_cast<std::uint8_t>(i);
  }
  Block shifted = state;
  shift_rows(shifted);
  // Row 0 (indices 0,4,8,12) is unchanged.
  for (const std::size_t i : {0u, 4u, 8u, 12u}) {
    EXPECT_EQ(shifted[i], state[i]);
  }
  // Row 1 shifts left by one column: position 1 gets old column 1 row 1 = 5.
  EXPECT_EQ(shifted[1], state[5]);
  EXPECT_EQ(shifted[5], state[9]);
  EXPECT_EQ(shifted[13], state[1]);
}

TEST(RoundPrimitives, ShiftRowsSourceIsPermutation) {
  std::array<bool, 16> seen{};
  for (std::size_t i = 0; i < 16; ++i) {
    seen[shift_rows_source(i)] = true;
  }
  for (const bool hit : seen) {
    EXPECT_TRUE(hit);
  }
}

TEST(RoundPrimitives, MixColumnsKnownColumn) {
  // Canonical single-column test vector: db 13 53 45 -> 8e 4d a1 bc.
  Block state{};
  state[0] = 0xdb;
  state[1] = 0x13;
  state[2] = 0x53;
  state[3] = 0x45;
  mix_columns(state);
  EXPECT_EQ(state[0], 0x8e);
  EXPECT_EQ(state[1], 0x4d);
  EXPECT_EQ(state[2], 0xa1);
  EXPECT_EQ(state[3], 0xbc);
}

TEST(RoundPrimitives, MixColumnsRoundTrip) {
  Block state;
  for (std::size_t i = 0; i < 16; ++i) {
    state[i] = static_cast<std::uint8_t>(251 * i + 13);
  }
  Block copy = state;
  mix_columns(copy);
  inv_mix_columns(copy);
  EXPECT_EQ(copy, state);
}

TEST(RoundPrimitives, SubBytesRoundTrip) {
  Block state;
  for (std::size_t i = 0; i < 16; ++i) {
    state[i] = static_cast<std::uint8_t>(i * 31);
  }
  Block copy = state;
  sub_bytes(copy);
  inv_sub_bytes(copy);
  EXPECT_EQ(copy, state);
}

TEST(Hamming, ByteWeight) {
  EXPECT_EQ(hamming_weight(std::uint8_t{0x00}), 0);
  EXPECT_EQ(hamming_weight(std::uint8_t{0xff}), 8);
  EXPECT_EQ(hamming_weight(std::uint8_t{0x0f}), 4);
  EXPECT_EQ(hamming_weight(std::uint8_t{0xa5}), 4);
}

TEST(Hamming, BlockWeightAndDistance) {
  Block zeros{};
  Block ones;
  ones.fill(0xff);
  EXPECT_EQ(hamming_weight(zeros), 0);
  EXPECT_EQ(hamming_weight(ones), 128);
  EXPECT_EQ(hamming_distance(zeros, ones), 128);
  EXPECT_EQ(hamming_distance(ones, ones), 0);
}

// Property sweeps over random keys/plaintexts.
class AesRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AesRoundTrip, DecryptInvertsEncrypt) {
  util::Xoshiro256 rng(GetParam());
  Block key;
  Block pt;
  rng.fill_bytes(key);
  rng.fill_bytes(pt);
  Aes128 cipher(key);
  EXPECT_EQ(cipher.decrypt(cipher.encrypt(pt)), pt);
}

TEST_P(AesRoundTrip, KeyScheduleInversion) {
  util::Xoshiro256 rng(GetParam() + 1000);
  Block key;
  rng.fill_bytes(key);
  const auto keys = Aes128::expand_key(key);
  EXPECT_EQ(Aes128::master_key_from_round10(keys[10]), key);
}

TEST_P(AesRoundTrip, TraceCiphertextConsistent) {
  util::Xoshiro256 rng(GetParam() + 2000);
  Block key;
  Block pt;
  rng.fill_bytes(key);
  rng.fill_bytes(pt);
  Aes128 cipher(key);
  RoundTrace trace;
  EXPECT_EQ(cipher.encrypt_trace(pt, trace), cipher.encrypt(pt));
}

INSTANTIATE_TEST_SUITE_P(RandomInputs, AesRoundTrip,
                         ::testing::Range<std::uint64_t>(0, 16));

}  // namespace
}  // namespace psc::aes
