#include "aes/sbox.h"

#include <gtest/gtest.h>

namespace psc::aes {
namespace {

TEST(Sbox, KnownEntries) {
  // FIPS-197 figure 7 spot checks.
  EXPECT_EQ(sbox[0x00], 0x63);
  EXPECT_EQ(sbox[0x01], 0x7c);
  EXPECT_EQ(sbox[0x53], 0xed);
  EXPECT_EQ(sbox[0xff], 0x16);
  EXPECT_EQ(sbox[0xc9], 0xdd);
}

TEST(Sbox, InverseKnownEntries) {
  EXPECT_EQ(inv_sbox[0x63], 0x00);
  EXPECT_EQ(inv_sbox[0xed], 0x53);
  EXPECT_EQ(inv_sbox[0x16], 0xff);
}

TEST(Sbox, InverseIsTrueInverse) {
  for (int i = 0; i < 256; ++i) {
    const auto x = static_cast<std::uint8_t>(i);
    EXPECT_EQ(inv_sbox[sbox[x]], x);
    EXPECT_EQ(sbox[inv_sbox[x]], x);
  }
}

TEST(Sbox, IsAPermutation) {
  std::array<bool, 256> seen{};
  for (int i = 0; i < 256; ++i) {
    seen[sbox[static_cast<std::size_t>(i)]] = true;
  }
  for (const bool hit : seen) {
    EXPECT_TRUE(hit);
  }
}

TEST(Sbox, NoFixedPoints) {
  // The AES S-box has no fixed points and no anti-fixed points.
  for (int i = 0; i < 256; ++i) {
    const auto x = static_cast<std::uint8_t>(i);
    EXPECT_NE(sbox[x], x);
    EXPECT_NE(sbox[x], static_cast<std::uint8_t>(~x));
  }
}

TEST(GfArithmetic, XtimeChain) {
  // FIPS-197 section 4.2.1 example: repeated xtime of 0x57.
  EXPECT_EQ(xtime(0x57), 0xae);
  EXPECT_EQ(xtime(0xae), 0x47);
  EXPECT_EQ(xtime(0x47), 0x8e);
  EXPECT_EQ(xtime(0x8e), 0x07);
}

TEST(GfArithmetic, MulKnownExamples) {
  // FIPS-197: {57} * {83} = {c1} and {57} * {13} = {fe}.
  EXPECT_EQ(gf_mul(0x57, 0x83), 0xc1);
  EXPECT_EQ(gf_mul(0x57, 0x13), 0xfe);
}

TEST(GfArithmetic, MulCommutative) {
  for (int a = 0; a < 256; a += 7) {
    for (int b = 0; b < 256; b += 11) {
      EXPECT_EQ(gf_mul(static_cast<std::uint8_t>(a),
                       static_cast<std::uint8_t>(b)),
                gf_mul(static_cast<std::uint8_t>(b),
                       static_cast<std::uint8_t>(a)));
    }
  }
}

TEST(GfArithmetic, MulIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf_mul(x, 1), x);
    EXPECT_EQ(gf_mul(x, 0), 0);
  }
}

TEST(GfArithmetic, InverseProperty) {
  EXPECT_EQ(gf_inv(0), 0);
  for (int a = 1; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf_mul(x, gf_inv(x)), 1) << "a=" << a;
  }
}

TEST(GfArithmetic, AffineOfZeroIsSboxConstant) {
  EXPECT_EQ(aes_affine(0), 0x63);
}

TEST(Sbox, CompileTimeGeneration) {
  static_assert(sbox[0x00] == 0x63);
  static_assert(sbox[0x53] == 0xed);
  static_assert(inv_sbox[0x63] == 0x00);
  SUCCEED();
}

}  // namespace
}  // namespace psc::aes
